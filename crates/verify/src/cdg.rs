//! Concrete channel-dependency-graph construction and cycle analysis.
//!
//! Channels are grouped into `(landing router, class)` vertices: every
//! concrete channel that lands at router `v` on class `A` has exactly
//! the same outgoing dependencies (the channels departing `v` on the
//! declared successor classes), so a cycle exists among the grouped
//! vertices **iff** one exists among the raw channels — the grouping is
//! an exact quotient, not an approximation. This keeps the graph at
//! `routers × classes` vertices instead of `routers × ports × VCs`.

use crate::report::ChannelRef;
use ofar_routing::{ClassId, MechanismDeps};
use ofar_topology::{Dragonfly, RouterId};

/// The quotient dependency graph of one declaration over one topology.
pub(crate) struct Cdg {
    /// Local then global class slots per router.
    vl: usize,
    vg: usize,
    routers: usize,
    /// Adjacency: vertex → successor vertices.
    adj: Vec<Vec<u32>>,
}

/// A cyclic strongly-connected component of the canonical graph.
pub(crate) struct CyclicScc {
    /// The distinct channel classes of its member vertices.
    pub classes: Vec<ClassId>,
    /// One concrete cycle through the component.
    pub cycle: Vec<ChannelRef>,
    /// Member vertices (for extracting a cycle through a given class).
    members: Vec<u32>,
}

impl Cdg {
    /// Instantiate the canonical (non-escape) part of `decl` over `topo`.
    pub fn build(topo: &Dragonfly, vl: usize, vg: usize, decl: &MechanismDeps) -> Self {
        let routers = topo.num_routers();
        let classes = vl + vg;
        let (a, h) = (topo.params().a, topo.params().h);

        // Class-level successor lists, indexed by class slot.
        let mut class_succ: Vec<Vec<ClassId>> = vec![Vec::new(); classes];
        for e in &decl.edges {
            let Some(slot) = slot_of(e.from, vl, vg) else {
                continue;
            };
            if matches!(e.to, ClassId::Local { .. } | ClassId::Global { .. })
                && slot_of(e.to, vl, vg).is_some()
                && !class_succ[slot].contains(&e.to)
            {
                class_succ[slot].push(e.to);
            }
        }

        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); routers * classes];
        for r in 0..routers {
            let v = RouterId::from(r);
            for slot in 0..classes {
                let succs = &class_succ[slot];
                if succs.is_empty() {
                    continue;
                }
                let out = &mut adj[r * classes + slot];
                for &to in succs {
                    match to {
                        ClassId::Local { vc } => {
                            for j in 0..a - 1 {
                                let w = topo.local_neighbor(v, j).idx();
                                out.push((w * classes + vc as usize) as u32);
                            }
                        }
                        ClassId::Global { vc } => {
                            for k in 0..h {
                                let w = topo.global_neighbor(v, k).0.idx();
                                out.push((w * classes + vl + vc as usize) as u32);
                            }
                        }
                        ClassId::Inject { .. } | ClassId::Escape => {}
                    }
                }
            }
        }
        Self {
            vl,
            vg,
            routers,
            adj,
        }
    }

    /// Concrete dependency-edge count (for the certificate): each
    /// quotient edge into `(w, B)` stands for as many concrete target
    /// channels as there are `B`-kind links into `w`, and each quotient
    /// source vertex for as many concrete source channels.
    pub fn concrete_dependencies(&self, topo: &Dragonfly) -> usize {
        let (a, h) = (topo.params().a, topo.params().h);
        let classes = self.vl + self.vg;
        let in_mult = |slot: usize| if slot < self.vl { a - 1 } else { h };
        self.adj
            .iter()
            .enumerate()
            .map(|(vtx, out)| in_mult(vtx % classes) * out.len())
            .sum()
    }

    /// All cyclic (size ≥ 2) strongly-connected components, each with
    /// its classes and a concrete example cycle. Quotient vertices never
    /// self-loop (a channel's successors depart a *different* router),
    /// so singleton components are acyclic.
    pub fn cyclic_sccs(&self) -> Vec<CyclicScc> {
        let comp = self.kosaraju();
        let n = self.adj.len();
        let mut size = vec![0u32; n];
        for &c in &comp {
            size[c as usize] += 1;
        }
        let mut out = Vec::new();
        let mut done = vec![false; n];
        for v in 0..n {
            let c = comp[v] as usize;
            if size[c] < 2 || done[c] {
                continue;
            }
            done[c] = true;
            out.push(self.describe_scc(v, &comp));
        }
        out
    }

    fn class_of(&self, vtx: usize) -> ClassId {
        let classes = self.vl + self.vg;
        let slot = vtx % classes;
        if slot < self.vl {
            ClassId::Local { vc: slot as u8 }
        } else {
            ClassId::Global {
                vc: (slot - self.vl) as u8,
            }
        }
    }

    fn router_of(&self, vtx: usize) -> RouterId {
        RouterId::from(vtx / (self.vl + self.vg))
    }

    /// Classes present in the SCC of `start` plus one concrete cycle
    /// found by a BFS from `start` back to itself inside the component.
    fn describe_scc(&self, start: usize, comp: &[u32]) -> CyclicScc {
        let c = comp[start];
        let mut classes: Vec<ClassId> = Vec::new();
        let mut members: Vec<u32> = Vec::new();
        for (v, &cv) in comp.iter().enumerate() {
            if cv == c {
                members.push(v as u32);
                let cl = self.class_of(v);
                if !classes.contains(&cl) {
                    classes.push(cl);
                }
            }
        }
        classes.sort();
        let cycle = self.shortest_cycle_from(start, comp, c);
        CyclicScc {
            classes,
            cycle,
            members,
        }
    }

    /// A concrete cycle through some member of `scc` on `class`, for
    /// reporting the exact channels a drain-free class participates in.
    /// Falls back to the component's representative cycle if the class is
    /// not in the component.
    pub fn cycle_through(&self, scc: &CyclicScc, class: ClassId) -> Vec<ChannelRef> {
        let Some(&start) = scc
            .members
            .iter()
            .find(|&&v| self.class_of(v as usize) == class)
        else {
            return scc.cycle.clone();
        };
        // Rebuild a membership map restricted to this component.
        let mut comp = vec![0u32; self.adj.len()];
        for &v in &scc.members {
            comp[v as usize] = 1;
        }
        self.shortest_cycle_from(start as usize, &comp, 1)
    }

    /// BFS for the shortest `start → start` cycle staying inside the
    /// vertices whose `comp` entry equals `c`.
    fn shortest_cycle_from(&self, start: usize, comp: &[u32], c: u32) -> Vec<ChannelRef> {
        let mut prev: Vec<Option<u32>> = vec![None; self.adj.len()];
        let mut queue = std::collections::VecDeque::from([start as u32]);
        let mut closer: Option<u32> = None;
        'bfs: while let Some(v) = queue.pop_front() {
            for &w in &self.adj[v as usize] {
                if comp[w as usize] != c {
                    continue;
                }
                if w as usize == start {
                    closer = Some(v);
                    break 'bfs;
                }
                if prev[w as usize].is_none() {
                    prev[w as usize] = Some(v);
                    queue.push_back(w);
                }
            }
        }
        let mut path = vec![start as u32];
        let mut at = closer.expect("SCC of size ≥ 2 must contain a cycle through each member");
        while at as usize != start {
            path.push(at);
            at = prev[at as usize].expect("BFS predecessor chain");
        }
        path.push(start as u32);
        path.reverse(); // start → … → start in edge direction
        path.windows(2)
            .map(|w| {
                let (from, to) = (w[0] as usize, w[1] as usize);
                let class = self.class_of(to);
                let (global, vc) = match class {
                    ClassId::Global { vc } => (true, vc),
                    ClassId::Local { vc } => (false, vc),
                    _ => unreachable!("canonical graph has only link classes"),
                };
                ChannelRef {
                    from: self.router_of(from),
                    to: self.router_of(to),
                    global,
                    vc,
                }
            })
            .collect()
    }

    /// Strongly-connected components by Kosaraju's algorithm (two
    /// iterative DFS passes); returns the component id per vertex.
    fn kosaraju(&self) -> Vec<u32> {
        let n = self.adj.len();
        // Pass 1: finish order on G.
        let mut order = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(u32, u32)> = Vec::new();
        for s in 0..n {
            if state[s] != 0 {
                continue;
            }
            state[s] = 1;
            stack.push((s as u32, 0));
            while let Some(&(v, i)) = stack.last() {
                if (i as usize) < self.adj[v as usize].len() {
                    let w = self.adj[v as usize][i as usize];
                    stack.last_mut().expect("non-empty").1 += 1;
                    if state[w as usize] == 0 {
                        state[w as usize] = 1;
                        stack.push((w, 0));
                    }
                } else {
                    state[v as usize] = 2;
                    order.push(v);
                    stack.pop();
                }
            }
        }
        // Pass 2: DFS on the reverse graph in reverse finish order.
        let mut radj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (v, out) in self.adj.iter().enumerate() {
            for &w in out {
                radj[w as usize].push(v as u32);
            }
        }
        let mut comp = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut dfs: Vec<u32> = Vec::new();
        for &s in order.iter().rev() {
            if comp[s as usize] != u32::MAX {
                continue;
            }
            comp[s as usize] = next;
            dfs.push(s);
            while let Some(v) = dfs.pop() {
                for &w in &radj[v as usize] {
                    if comp[w as usize] == u32::MAX {
                        comp[w as usize] = next;
                        dfs.push(w);
                    }
                }
            }
            next += 1;
        }
        comp
    }

    /// Routers × classes vertex count (== concrete channel landing
    /// groups; the concrete channel count is reported separately).
    pub fn vertex_count(&self) -> usize {
        self.routers * (self.vl + self.vg)
    }
}

/// Vertex slot of a canonical class, `None` for injection/escape.
fn slot_of(c: ClassId, vl: usize, vg: usize) -> Option<usize> {
    match c {
        ClassId::Local { vc } => ((vc as usize) < vl).then_some(vc as usize),
        ClassId::Global { vc } => ((vc as usize) < vg).then_some(vl + vc as usize),
        ClassId::Inject { .. } | ClassId::Escape => None,
    }
}
