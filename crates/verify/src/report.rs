//! Typed verification outcomes: the certificate of a proven-safe
//! configuration and the named violations of a rejected one.

use ofar_engine::{ConfigError, RequestKind};
use ofar_routing::{ClassEdge, ClassId};
use ofar_topology::{GroupId, RouterId};
use std::fmt;

/// One concrete channel in a reported dependency cycle: the directed
/// link `from → to` at virtual channel `vc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelRef {
    /// Router the channel departs from.
    pub from: RouterId,
    /// Router the channel lands at.
    pub to: RouterId,
    /// Whether the link is local or global.
    pub global: bool,
    /// Virtual channel index on the link.
    pub vc: u8,
}

impl ChannelRef {
    /// The abstract class of this channel.
    pub fn class(&self) -> ClassId {
        if self.global {
            ClassId::Global { vc: self.vc }
        } else {
            ClassId::Local { vc: self.vc }
        }
    }
}

impl fmt::Display for ChannelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.global { "g" } else { "l" };
        write!(f, "{}-{}:v{}->{}", self.from, kind, self.vc, self.to)
    }
}

/// Render a cycle as `a → b → … → a`, eliding the middle of very long
/// cycles.
pub(crate) fn fmt_cycle(cycle: &[ChannelRef], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    const SHOWN: usize = 8;
    for (i, c) in cycle.iter().take(SHOWN).enumerate() {
        if i > 0 {
            write!(f, " ")?;
        }
        write!(f, "{c}")?;
    }
    if cycle.len() > SHOWN {
        write!(f, " … ({} channels total)", cycle.len())?;
    }
    Ok(())
}

/// Why a configuration was refused. Every variant names the concrete
/// offender — a dependency cycle as a router/port/VC sequence, a broken
/// ring with its routers, or the violated buffer inequality.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// The configuration failed [`ofar_engine::SimConfig::validate`].
    Config(ConfigError),
    /// The mechanism delegates deadlock freedom to an escape subnetwork,
    /// but the configuration provides no ring.
    MissingEscape {
        /// Mechanism name.
        mechanism: &'static str,
    },
    /// The ring buffers cannot hold the bubble: `buf_ring` must be at
    /// least two packets (§IV-C) or ring entries can fill the cycle.
    Bubble {
        /// Configured ring-buffer capacity in phits.
        cap: usize,
        /// Required capacity (`2 × packet_size`) in phits.
        required: usize,
    },
    /// An escape ring is not a single spanning cycle over real links.
    MalformedRing {
        /// Ring index.
        ring: usize,
        /// What is wrong, in words.
        detail: String,
        /// The routers involved in the defect.
        witness: Vec<RouterId>,
    },
    /// The canonical channel-dependency graph of a mechanism without an
    /// escape layer contains a cycle.
    DependencyCycle {
        /// Mechanism name.
        mechanism: &'static str,
        /// One concrete cycle, as a router/port/VC sequence.
        cycle: Vec<ChannelRef>,
    },
    /// An adaptive channel class participates in a dependency cycle but
    /// declares no entry into the escape layer, so Duato's drain
    /// condition fails.
    NoEscapeDrain {
        /// Mechanism name.
        mechanism: &'static str,
        /// The class with no declared escape entry.
        class: ClassId,
        /// A cycle through that class.
        cycle: Vec<ChannelRef>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::MissingEscape { mechanism } => write!(
                f,
                "{mechanism} delegates deadlock freedom to an escape ring, \
                 but the configuration has none (SimConfig::ring = None)"
            ),
            Self::Bubble { cap, required } => write!(
                f,
                "bubble violation: ring buffers hold {cap} phits but the \
                 bubble condition needs {required} (two packets)"
            ),
            Self::MalformedRing {
                ring,
                detail,
                witness,
            } => {
                write!(f, "escape ring {ring} is malformed: {detail}")?;
                if !witness.is_empty() {
                    write!(f, " [")?;
                    for (i, r) in witness.iter().take(8).enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{r}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Self::DependencyCycle { mechanism, cycle } => {
                write!(f, "{mechanism}: channel dependency cycle ")?;
                fmt_cycle(cycle, f)
            }
            Self::NoEscapeDrain {
                mechanism,
                class,
                cycle,
            } => {
                write!(
                    f,
                    "{mechanism}: class {class} is in a dependency cycle but \
                     declares no escape entry (Duato drain fails): "
                )?;
                fmt_cycle(cycle, f)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Proof summary for a certified configuration: what was checked and how
/// big the obligation was.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Certified mechanism.
    pub mechanism: &'static str,
    /// Routers in the instantiated topology.
    pub routers: usize,
    /// Concrete canonical channels in the dependency graph.
    pub channels: usize,
    /// Concrete dependency edges instantiated from the declaration.
    pub dependencies: usize,
    /// Escape channels (ring lanes × routers × rings); 0 without a ring.
    pub escape_channels: usize,
    /// Escape rings proven to be spanning bubble-protected cycles.
    pub rings: usize,
    /// Cyclic strongly-connected components in the adaptive subgraph,
    /// each proven to drain into the escape layer (0 means the canonical
    /// graph itself is acyclic).
    pub cycles_drained: usize,
    /// `buf_ring − 2·packet_size` headroom over the bubble condition
    /// (`None` without a ring).
    pub bubble_slack: Option<usize>,
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} channels / {} deps over {} routers",
            self.mechanism, self.channels, self.dependencies, self.routers
        )?;
        if self.rings > 0 {
            write!(
                f,
                "; {} ring(s), {} escape channels, {} cycle(s) drained, bubble slack {}",
                self.rings,
                self.escape_channels,
                self.cycles_drained,
                self.bubble_slack.unwrap_or(0)
            )?;
        } else {
            write!(f, "; acyclic (no escape layer needed)")?;
        }
        Ok(())
    }
}

/// One concrete routing decision the conformance explorer observed — the
/// named counterexample attached to every conformance rejection, and
/// enough context (router, destination, header flags, credit scenario) to
/// replay it by hand against the mechanism's `route` implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TransitionWitness {
    /// Router where the decision was taken.
    pub router: RouterId,
    /// Destination router of the probed packet.
    pub dst: RouterId,
    /// Channel class the packet occupied.
    pub from: ClassId,
    /// Channel class the emitted request targets.
    pub to: ClassId,
    /// The request kind the mechanism emitted.
    pub why: RequestKind,
    /// Packet header flags at decision time.
    pub flags: u8,
    /// Pending Valiant intermediate group, if any.
    pub intermediate: Option<GroupId>,
    /// Whether the packet was modelled as head-blocked past the patience
    /// threshold.
    pub patient: bool,
    /// The credit/occupancy lattice point applied to the router.
    pub scenario: &'static str,
}

impl fmt::Display for TransitionWitness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} -> {} ({:?}) at {} toward {}, flags {:#04x}",
            self.from, self.to, self.why, self.router, self.dst, self.flags
        )?;
        if let Some(g) = self.intermediate {
            write!(f, ", intermediate {g}")?;
        }
        if self.patient {
            write!(f, ", patient")?;
        }
        write!(f, ", scenario '{}'", self.scenario)
    }
}

/// Why the conformance checker rejected a mechanism: its observed
/// behavior escapes the declared dependency graph, or a decision fails
/// the livelock ranking. Every variant names a concrete witness.
#[derive(Clone, Debug, PartialEq)]
pub enum ConformanceError {
    /// The declared dependency graph itself failed certification — the
    /// conformance run never started.
    Verify(VerifyError),
    /// The implementation emitted a class transition absent from the
    /// mechanism's declaration, so the static deadlock proof does not
    /// cover the real code.
    UndeclaredTransition {
        /// Mechanism name.
        mechanism: &'static str,
        /// The observed out-of-declaration decision.
        witness: TransitionWitness,
    },
    /// A decision failed to strictly decrease the mechanism's
    /// well-founded ranking, so the static hop bound (and with it
    /// livelock freedom) is unproven.
    RankingViolation {
        /// Mechanism name.
        mechanism: &'static str,
        /// The non-decreasing decision.
        witness: TransitionWitness,
        /// Ranking value before the decision.
        before: u64,
        /// Ranking value after it (`>= before` or otherwise ill-founded).
        after: u64,
    },
    /// The *observed* transition graph — tighter than the declaration —
    /// failed re-certification. Cannot happen when the declaration
    /// certifies and observation is contained in it, unless containment
    /// itself is broken; kept as a defense-in-depth arm.
    ObservedGraphRejected {
        /// Mechanism name.
        mechanism: &'static str,
        /// The verifier's rejection of the observed graph.
        error: VerifyError,
    },
}

impl fmt::Display for ConformanceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Verify(e) => write!(f, "declared graph rejected: {e}"),
            Self::UndeclaredTransition { mechanism, witness } => write!(
                f,
                "{mechanism}: observed transition not in the declared \
                 dependency graph: {witness}"
            ),
            Self::RankingViolation {
                mechanism,
                witness,
                before,
                after,
            } => write!(
                f,
                "{mechanism}: decision does not decrease the livelock \
                 ranking ({before} -> {after}): {witness}"
            ),
            Self::ObservedGraphRejected { mechanism, error } => write!(
                f,
                "{mechanism}: observed transition graph failed \
                 re-certification: {error}"
            ),
        }
    }
}

impl std::error::Error for ConformanceError {}

impl From<VerifyError> for ConformanceError {
    fn from(e: VerifyError) -> Self {
        Self::Verify(e)
    }
}

/// What the conformance explorer proved for one mechanism: the observed
/// transition set is contained in the declaration, every decision
/// strictly decreases the livelock ranking, and the observed graph
/// re-certifies. Carries the derived static hop bounds.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Mechanism name.
    pub mechanism: &'static str,
    /// Distinct abstract (router, class, destination, header, patience)
    /// states reached.
    pub states: usize,
    /// Routing decisions examined (route/on_inject outcomes across the
    /// scenario lattice and pinned random choices).
    pub decisions: usize,
    /// Observed class transitions (the edges the code actually takes).
    pub observed: Vec<ClassEdge>,
    /// Declared canonical transitions never observed on any probed
    /// decision — dead declarations (over-approximation slack, reported
    /// for audit, not an error).
    pub dead: Vec<ClassEdge>,
    /// Proven worst-case canonical (non-ring) hops: the maximum ranking
    /// value over all reachable states.
    pub hop_bound: u64,
    /// The paper's path-length ceiling the bound must meet.
    pub paper_bound: u64,
    /// Worst-case hops including escape-ring travel (`None` for
    /// mechanisms without a ring).
    pub ring_bound: Option<u64>,
    /// Certificate of the re-verified *observed* graph.
    pub observed_certificate: Certificate,
}

impl fmt::Display for ConformanceReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: conforms — {} states, {} decisions, {} observed / {} dead \
             declared transitions, hop bound {} (paper {})",
            self.mechanism,
            self.states,
            self.decisions,
            self.observed.len(),
            self.dead.len(),
            self.hop_bound,
            self.paper_bound
        )?;
        if let Some(rb) = self.ring_bound {
            write!(f, ", ring-inclusive bound {rb}")?;
        }
        Ok(())
    }
}
