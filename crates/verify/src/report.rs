//! Typed verification outcomes: the certificate of a proven-safe
//! configuration and the named violations of a rejected one.

use ofar_engine::ConfigError;
use ofar_routing::ClassId;
use ofar_topology::RouterId;
use std::fmt;

/// One concrete channel in a reported dependency cycle: the directed
/// link `from → to` at virtual channel `vc`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChannelRef {
    /// Router the channel departs from.
    pub from: RouterId,
    /// Router the channel lands at.
    pub to: RouterId,
    /// Whether the link is local or global.
    pub global: bool,
    /// Virtual channel index on the link.
    pub vc: u8,
}

impl ChannelRef {
    /// The abstract class of this channel.
    pub fn class(&self) -> ClassId {
        if self.global {
            ClassId::Global { vc: self.vc }
        } else {
            ClassId::Local { vc: self.vc }
        }
    }
}

impl fmt::Display for ChannelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = if self.global { "g" } else { "l" };
        write!(f, "{}-{}:v{}->{}", self.from, kind, self.vc, self.to)
    }
}

/// Render a cycle as `a → b → … → a`, eliding the middle of very long
/// cycles.
pub(crate) fn fmt_cycle(cycle: &[ChannelRef], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    const SHOWN: usize = 8;
    for (i, c) in cycle.iter().take(SHOWN).enumerate() {
        if i > 0 {
            write!(f, " ")?;
        }
        write!(f, "{c}")?;
    }
    if cycle.len() > SHOWN {
        write!(f, " … ({} channels total)", cycle.len())?;
    }
    Ok(())
}

/// Why a configuration was refused. Every variant names the concrete
/// offender — a dependency cycle as a router/port/VC sequence, a broken
/// ring with its routers, or the violated buffer inequality.
#[derive(Clone, Debug, PartialEq)]
pub enum VerifyError {
    /// The configuration failed [`ofar_engine::SimConfig::validate`].
    Config(ConfigError),
    /// The mechanism delegates deadlock freedom to an escape subnetwork,
    /// but the configuration provides no ring.
    MissingEscape {
        /// Mechanism name.
        mechanism: &'static str,
    },
    /// The ring buffers cannot hold the bubble: `buf_ring` must be at
    /// least two packets (§IV-C) or ring entries can fill the cycle.
    Bubble {
        /// Configured ring-buffer capacity in phits.
        cap: usize,
        /// Required capacity (`2 × packet_size`) in phits.
        required: usize,
    },
    /// An escape ring is not a single spanning cycle over real links.
    MalformedRing {
        /// Ring index.
        ring: usize,
        /// What is wrong, in words.
        detail: String,
        /// The routers involved in the defect.
        witness: Vec<RouterId>,
    },
    /// The canonical channel-dependency graph of a mechanism without an
    /// escape layer contains a cycle.
    DependencyCycle {
        /// Mechanism name.
        mechanism: &'static str,
        /// One concrete cycle, as a router/port/VC sequence.
        cycle: Vec<ChannelRef>,
    },
    /// An adaptive channel class participates in a dependency cycle but
    /// declares no entry into the escape layer, so Duato's drain
    /// condition fails.
    NoEscapeDrain {
        /// Mechanism name.
        mechanism: &'static str,
        /// The class with no declared escape entry.
        class: ClassId,
        /// A cycle through that class.
        cycle: Vec<ChannelRef>,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Config(e) => write!(f, "invalid configuration: {e}"),
            Self::MissingEscape { mechanism } => write!(
                f,
                "{mechanism} delegates deadlock freedom to an escape ring, \
                 but the configuration has none (SimConfig::ring = None)"
            ),
            Self::Bubble { cap, required } => write!(
                f,
                "bubble violation: ring buffers hold {cap} phits but the \
                 bubble condition needs {required} (two packets)"
            ),
            Self::MalformedRing { ring, detail, witness } => {
                write!(f, "escape ring {ring} is malformed: {detail}")?;
                if !witness.is_empty() {
                    write!(f, " [")?;
                    for (i, r) in witness.iter().take(8).enumerate() {
                        if i > 0 {
                            write!(f, " ")?;
                        }
                        write!(f, "{r}")?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
            Self::DependencyCycle { mechanism, cycle } => {
                write!(f, "{mechanism}: channel dependency cycle ")?;
                fmt_cycle(cycle, f)
            }
            Self::NoEscapeDrain { mechanism, class, cycle } => {
                write!(
                    f,
                    "{mechanism}: class {class} is in a dependency cycle but \
                     declares no escape entry (Duato drain fails): "
                )?;
                fmt_cycle(cycle, f)
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Proof summary for a certified configuration: what was checked and how
/// big the obligation was.
#[derive(Clone, Debug)]
pub struct Certificate {
    /// Certified mechanism.
    pub mechanism: &'static str,
    /// Routers in the instantiated topology.
    pub routers: usize,
    /// Concrete canonical channels in the dependency graph.
    pub channels: usize,
    /// Concrete dependency edges instantiated from the declaration.
    pub dependencies: usize,
    /// Escape channels (ring lanes × routers × rings); 0 without a ring.
    pub escape_channels: usize,
    /// Escape rings proven to be spanning bubble-protected cycles.
    pub rings: usize,
    /// Cyclic strongly-connected components in the adaptive subgraph,
    /// each proven to drain into the escape layer (0 means the canonical
    /// graph itself is acyclic).
    pub cycles_drained: usize,
    /// `buf_ring − 2·packet_size` headroom over the bubble condition
    /// (`None` without a ring).
    pub bubble_slack: Option<usize>,
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} channels / {} deps over {} routers",
            self.mechanism, self.channels, self.dependencies, self.routers
        )?;
        if self.rings > 0 {
            write!(
                f,
                "; {} ring(s), {} escape channels, {} cycle(s) drained, bubble slack {}",
                self.rings,
                self.escape_channels,
                self.cycles_drained,
                self.bubble_slack.unwrap_or(0)
            )?;
        } else {
            write!(f, "; acyclic (no escape layer needed)")?;
        }
        Ok(())
    }
}
