//! Structured oracle driver: run the static certifier stack against an
//! *arbitrary* policy/declaration and return per-oracle verdicts.
//!
//! The mutation-testing harness (`crates/mutate`) measures whether the
//! proof stack actually detects seeded defects. Each certifier here is
//! one *oracle*; a defect is *killed* when at least one oracle rejects
//! it with a witness. This module drives the two static oracles — the
//! CDG deadlock verifier and the routing-conformance model checker —
//! against subjects the safe constructors ([`crate::certify`],
//! [`crate::conformance`]) can never build: mutated declarations,
//! perturbed configurations and deliberately defective policies. The
//! two dynamic oracles (runtime invariant audit, burst watchdog) need
//! the engine and runners, the phase-discipline lint oracle needs the
//! analyzer, and the commutativity certifier needs the engine's shard
//! schedules, so their drivers live with the harness; the verdict
//! vocabulary here is shared by all six.

use crate::report::{Certificate, ConformanceError, ConformanceReport, VerifyError};
use crate::ring_spec::RingSpec;
use crate::{explore, verify_decl, RankingKind};
use ofar_engine::{RingMode, SimConfig};
use ofar_routing::{EnumerablePolicy, MechanismDeps};
use ofar_topology::{Dragonfly, HamiltonianRing};

/// The six independent correctness oracles of the proof stack.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OracleKind {
    /// Phase-discipline race analyzer (`ofar-analyze` R rules) over the
    /// engine source: cross-shard writes, read races and unsharded
    /// accumulation against the declared step-loop phases.
    Lint,
    /// Schedule-adversarial commutativity certifier (`ofar-race`):
    /// byte-compares epoch snapshots of permuted-shard-order runs
    /// against the identity schedule and bisects any divergence to the
    /// first cycle.
    Race,
    /// Static channel-dependency-graph deadlock verifier
    /// ([`crate::certify`] / [`crate::verify_decl`]).
    Cdg,
    /// Routing-conformance model checker ([`crate::conformance_with`]):
    /// declaration containment, livelock ranking, observed-graph
    /// re-certification.
    Conformance,
    /// Runtime invariant auditor (engine `audit` feature) over a
    /// dynamic run.
    Audit,
    /// Burst progress watchdog: deadlock/livelock/partition diagnosis
    /// of a dynamic run.
    Watchdog,
}

impl OracleKind {
    /// Short stable name used in kill-matrix reports.
    pub fn name(self) -> &'static str {
        match self {
            OracleKind::Lint => "lint",
            OracleKind::Race => "race",
            OracleKind::Cdg => "cdg",
            OracleKind::Conformance => "conformance",
            OracleKind::Audit => "audit",
            OracleKind::Watchdog => "watchdog",
        }
    }
}

/// Outcome of one oracle against one subject.
#[derive(Clone, Debug)]
pub enum OracleVerdict {
    /// The oracle accepted the subject (for a mutant: the defect
    /// *survived* this oracle).
    Pass,
    /// The oracle rejected the subject, naming the witness (cycle,
    /// ranking violation, transition, audit violation or stall).
    Fail {
        /// Human-readable structured witness (the oracle's typed error,
        /// rendered).
        witness: String,
    },
}

impl OracleVerdict {
    /// Whether the oracle rejected the subject.
    pub fn is_fail(&self) -> bool {
        matches!(self, OracleVerdict::Fail { .. })
    }
}

/// Verdicts of the static half of the stack for one subject.
#[derive(Clone, Debug)]
pub struct StaticVerdicts {
    /// CDG deadlock verifier on the *declared* dependency graph.
    pub cdg: OracleVerdict,
    /// Conformance model check of the real (or mutated) routing code
    /// against that declaration.
    pub conformance: OracleVerdict,
}

/// [`crate::certify`] with an explicit (possibly mutated) declaration:
/// validate the configuration, build the topology and escape rings it
/// implies, and discharge the CDG proof obligations for `decl`.
pub fn certify_decl(cfg: &SimConfig, decl: &MechanismDeps) -> Result<Certificate, VerifyError> {
    cfg.validate().map_err(|e| match e {
        ofar_engine::ConfigError::RingBufferNoBubble { cap } => VerifyError::Bubble {
            cap,
            required: 2 * cfg.packet_size,
        },
        other => VerifyError::Config(other),
    })?;
    let topo = Dragonfly::new(cfg.params);
    let rings: Vec<RingSpec> = if cfg.ring == RingMode::None {
        Vec::new()
    } else {
        HamiltonianRing::embed_disjoint(&topo, cfg.escape_rings)
            .iter()
            .map(|r| RingSpec::from_ring(&topo, r))
            .collect()
    };
    verify_decl(&topo, cfg, decl, &rings)
}

/// Run both static oracles against an arbitrary `(policy, declaration,
/// ranking)` subject and return structured verdicts. The oracles run
/// independently — a declaration the CDG verifier rejects is still
/// model-checked, because the harness wants to know *every* oracle that
/// catches a given defect, not just the first.
pub fn run_static_stack<P: EnumerablePolicy>(
    cfg: &SimConfig,
    policy: P,
    decl: MechanismDeps,
    rank: RankingKind,
) -> StaticVerdicts {
    let cdg = match certify_decl(cfg, &decl) {
        Ok(_) => OracleVerdict::Pass,
        Err(e) => OracleVerdict::Fail {
            witness: e.to_string(),
        },
    };
    let conformance = match explore::conformance_with(cfg, policy, decl, rank) {
        Ok(_) => OracleVerdict::Pass,
        Err(e) => OracleVerdict::Fail {
            witness: e.to_string(),
        },
    };
    StaticVerdicts { cdg, conformance }
}

/// Convenience: render a conformance result as a verdict.
pub fn conformance_verdict(result: &Result<ConformanceReport, ConformanceError>) -> OracleVerdict {
    match result {
        Ok(_) => OracleVerdict::Pass,
        Err(e) => OracleVerdict::Fail {
            witness: e.to_string(),
        },
    }
}
