//! Property tests for the CDG verifier: every configuration the sweep
//! drivers can produce is certified, and the classic broken shapes are
//! rejected with the right typed error.

use ofar_engine::{RingMode, SimConfig};
use ofar_routing::{ClassId, DependencyDecl, MechanismKind};
use ofar_topology::{Dragonfly, HamiltonianRing};
use ofar_verify::{certify, verify_decl, RingSpec, VerifyError};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every mechanism of the paper set certifies on every sweep
    /// configuration: paper-scale VCs, any legal ring count, either ring
    /// mode. This is the guarantee that `core::run`'s refusal gate never
    /// fires for a configuration our own constructors can produce.
    #[test]
    fn sweep_configurations_all_certify(
        h in 2usize..=3,
        rings in 1usize..=3,
        embedded in any::<bool>(),
        mech in 0usize..5,
    ) {
        let kind = MechanismKind::paper_set()[mech];
        let mut cfg = kind.adapt_config(SimConfig::paper(h));
        if kind.needs_ring() {
            cfg.escape_rings = rings.min(h);
            cfg.ring = if embedded { RingMode::Embedded } else { RingMode::Physical };
        }
        let cert = certify(&cfg, kind);
        prop_assert!(cert.is_ok(), "{}: {:?}", kind.name(), cert.err());
        let cert = cert.unwrap();
        prop_assert_eq!(cert.routers, Dragonfly::new(cfg.params).num_routers());
        if kind.needs_ring() {
            prop_assert_eq!(cert.rings, rings.min(h));
        }
    }

    /// Reversing any single ring edge breaks the spanning-cycle proof
    /// and is reported as a malformed ring, never accepted and never a
    /// panic.
    #[test]
    fn any_reversed_ring_edge_is_rejected(h in 2usize..=3, edge in 0usize..36) {
        let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(h));
        let topo = Dragonfly::new(cfg.params);
        let ring = HamiltonianRing::embedded(&topo, 0);
        let mut spec = RingSpec::from_ring(&topo, &ring);
        let i = edge % spec.edges.len();
        let (from, to) = spec.edges[i];
        spec.edges[i] = (to, from);
        let decl = MechanismKind::Ofar.dependency_decl(&cfg);
        let r = verify_decl(&topo, &cfg, &decl, &[spec]);
        prop_assert!(
            matches!(r, Err(VerifyError::MalformedRing { .. })),
            "expected MalformedRing, got {r:?}"
        );
    }

    /// Any ring buffer below two packets violates the bubble condition.
    #[test]
    fn any_sub_bubble_ring_buffer_is_rejected(h in 2usize..=3, cap in 0usize..8) {
        let mut cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(h));
        prop_assume!(cap < 2 * cfg.packet_size);
        cfg.buf_ring = cap;
        let err = certify(&cfg, MechanismKind::Ofar).unwrap_err();
        prop_assert_eq!(
            err,
            VerifyError::Bubble { cap, required: 2 * cfg.packet_size }
        );
    }

    /// Stripping the escape entry from any canonical class that sits in
    /// a dependency cycle fails Duato's drain condition for exactly that
    /// class.
    #[test]
    fn any_drain_free_class_is_rejected(h in 2usize..=3, local in any::<bool>(), vc in 0u8..2) {
        let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(h));
        let class = if local {
            ClassId::Local { vc }
        } else {
            ClassId::Global { vc: vc.min((cfg.vcs_global - 1) as u8) }
        };
        let topo = Dragonfly::new(cfg.params);
        let ring = HamiltonianRing::embedded(&topo, 0);
        let spec = RingSpec::from_ring(&topo, &ring);
        let mut decl = MechanismKind::Ofar.dependency_decl(&cfg);
        decl.edges.retain(|e| !(e.to == ClassId::Escape && e.from == class));
        let r = verify_decl(&topo, &cfg, &decl, &[spec]);
        match r {
            Err(VerifyError::NoEscapeDrain { class: c, ref cycle, .. }) => {
                prop_assert_eq!(c, class);
                prop_assert!(cycle.iter().any(|ch| ch.class() == class));
            }
            ref other => prop_assert!(false, "expected NoEscapeDrain, got {other:?}"),
        }
    }
}
