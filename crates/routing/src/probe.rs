//! Enumerable decision probing for the conformance model checker.
//!
//! The randomized mechanisms (VAL, PB, PAR, OFAR) make two kinds of
//! random choices: an *intermediate group* for Valiant-style paths and a
//! uniform pick among admissible *misroute candidate ports*. Exhaustive
//! conformance checking (`ofar-verify`) must enumerate every choice the
//! policy could make, not sample one — so each policy implements
//! [`EnumerablePolicy`]: while a [`ProbePin`] is installed the policy
//! substitutes the pinned choice for its RNG draw and reports, via
//! [`ProbeFeedback`], which choices were actually consulted and how many
//! candidates were admissible. The admissibility logic itself (§IV-B
//! thresholds, availability, flag gates) is untouched: only the final
//! uniform pick is replaced, so the observed transition set equals the
//! union over all RNG outcomes.
//!
//! Unprobed (the normal simulator path) the hooks cost one `Option`
//! check and the hot reservoir-sampling path is unchanged.

use ofar_engine::Policy;
use ofar_topology::GroupId;

/// A pinned outcome for every random choice one `route`/`on_inject` call
/// could make.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ProbePin {
    /// The intermediate group to use wherever the policy would sample
    /// one. The caller must pass a group that the policy's own sampler
    /// could produce (≠ source and destination groups).
    pub intermediate: GroupId,
    /// Index into the admissible-candidate list (in port order) wherever
    /// the policy would pick uniformly; taken modulo the list length.
    pub candidate: usize,
}

impl ProbePin {
    /// A pin selecting candidate 0 and `intermediate` where sampled.
    pub fn new(intermediate: GroupId, candidate: usize) -> Self {
        Self {
            intermediate,
            candidate,
        }
    }
}

/// What the last probed `route`/`on_inject` call actually consulted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProbeFeedback {
    /// The call sampled an intermediate group (so every valid group is a
    /// distinct outcome to enumerate).
    pub intermediate_sampled: bool,
    /// Size of the admissible-candidate list of the *deciding* uniform
    /// pick — 0 when no pick happened or the list was empty. (Within one
    /// call, earlier picks that found no candidate fall through to the
    /// next; only the pick that found candidates decides, so the maximum
    /// over the call's picks is exactly its list size.)
    pub candidates: u32,
}

/// A [`Policy`] whose random choices can be pinned and enumerated.
///
/// Protocol: install a pin with [`EnumerablePolicy::set_probe`] (which
/// also clears the feedback), call `route` or `on_inject` once, then
/// read [`EnumerablePolicy::probe_feedback`] to learn which further pins
/// must be enumerated. `set_probe(None)` restores normal RNG behavior.
pub trait EnumerablePolicy: Policy {
    /// Install (or clear) the pinned choices; resets the feedback.
    fn set_probe(&mut self, pin: Option<ProbePin>);

    /// Feedback from the most recent probed call.
    fn probe_feedback(&self) -> ProbeFeedback;
}

/// Implement [`EnumerablePolicy`] for a policy that stores its pin and
/// feedback in a `probe: ProbeState` field — the standard shape shared
/// by every randomized mechanism (VAL, PB, PAR, OFAR). `set_probe`
/// installs the pin and clears the feedback; `probe_feedback` reads the
/// last call's feedback back out.
macro_rules! impl_enumerable_via_probe {
    ($ty:ty) => {
        impl $crate::probe::EnumerablePolicy for $ty {
            fn set_probe(&mut self, pin: Option<$crate::probe::ProbePin>) {
                self.probe = $crate::probe::ProbeState {
                    pin,
                    feedback: $crate::probe::ProbeFeedback::default(),
                };
            }

            fn probe_feedback(&self) -> $crate::probe::ProbeFeedback {
                self.probe.feedback
            }
        }
    };
}

/// Implement [`EnumerablePolicy`] for a deterministic policy: pins are
/// accepted and ignored, and the feedback always reports that nothing
/// was sampled.
macro_rules! impl_enumerable_deterministic {
    ($ty:ty) => {
        impl $crate::probe::EnumerablePolicy for $ty {
            fn set_probe(&mut self, _pin: Option<$crate::probe::ProbePin>) {}

            fn probe_feedback(&self) -> $crate::probe::ProbeFeedback {
                $crate::probe::ProbeFeedback::default()
            }
        }
    };
}

pub(crate) use {impl_enumerable_deterministic, impl_enumerable_via_probe};

/// Per-policy probe state: the installed pin plus the feedback of the
/// last call. Deterministic policies keep the default (no-op) state.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct ProbeState {
    pub(crate) pin: Option<ProbePin>,
    pub(crate) feedback: ProbeFeedback,
}

impl ProbeState {
    /// Resolve an intermediate-group sample: the pinned group when
    /// probed (recording that the sample happened), else `fallback()`.
    pub(crate) fn intermediate_or(&mut self, fallback: impl FnOnce() -> GroupId) -> GroupId {
        match self.pin {
            Some(pin) => {
                self.feedback.intermediate_sampled = true;
                pin.intermediate
            }
            None => fallback(),
        }
    }
}
