//! OFAR: On-the-Fly Adaptive Routing (§IV) — the paper's contribution.
//!
//! OFAR decouples routing from deadlock avoidance:
//!
//! 1. **In-transit misrouting** (§IV-A): any router may divert a packet
//!    off its minimal path, instead of freezing the min/Valiant decision
//!    at injection. Two header flags bound the diversions — at most one
//!    global misroute per packet and one local misroute per group — so
//!    the longest canonical path is 8 hops (2 global + 6 local).
//! 2. **Contention-aware thresholds** (§IV-B): misrouting is considered
//!    only when the occupancy `Q_min` of the minimal output reaches
//!    `Th_min` *and* the minimal port is unavailable; the candidate
//!    non-minimal ports must satisfy `Q_nonmin ≤ Th_nonmin`. All
//!    information is local to the current router (credits) — no remote
//!    sensing.
//! 3. **Escape subnetwork** (§IV-C): a Hamiltonian ring with bubble flow
//!    control absorbs would-be deadlocks; packets enter it only as a last
//!    resort and leave as soon as a minimal output is available, at most
//!    `max_ring_exits` times (livelock bound).
//!
//! The *starvation rule* of §IV-A is reproduced exactly: in the source
//! group, packets still in injection queues misroute **globally** (saving
//! the first local hop), while packets in local queues misroute
//! **locally first, then globally** — otherwise the `h − 1` non-minimal
//! global queues of the hot router would be monopolized by through
//! traffic and its own nodes would starve.
//!
//! `OFAR-L` (the dissection model of §IV-A/§VI) is this policy with
//! local misrouting disabled.

use crate::common::{group_pos, hop_to_request, injection_vc, live_minimal_hop, VcLadder};
use crate::probe::ProbeState;
use crate::state::RngLanes;
use ofar_engine::{
    InputCtx, Packet, Policy, PortKind, Request, RequestKind, RouterView, SimConfig,
    FLAG_GLOBAL_MISROUTED, FLAG_LOCAL_MISROUTED,
};
use ofar_topology::MinimalHop;
use rand::Rng;

/// The misroute threshold pair of §IV-B.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MisrouteThreshold {
    /// Static thresholds, e.g. `Th_min = 100%`, `Th_nonmin = 40%`:
    /// misroute only when the minimal path has no credits left, to an
    /// output at most 40% full.
    Static {
        /// Minimum `Q_min` before misrouting is considered.
        th_min: f64,
        /// Maximum occupancy of an eligible non-minimal output.
        th_nonmin: f64,
    },
    /// Variable threshold, the paper's evaluated default:
    /// `Th_min = 0`, `Th_nonmin = factor × Q_min` (§V uses 0.9).
    Variable {
        /// Multiplier on `Q_min`.
        factor: f64,
    },
}

impl MisrouteThreshold {
    /// The default variable threshold. The paper tuned the factor
    /// empirically for its router model and landed at 0.9 (§V); with
    /// this engine's whole-packet credit quantization the same sweep
    /// (see the `ablation_thresholds` bench) lands at 0.5 — the paper's
    /// criterion, "a reasonable trade-off between the performance in
    /// adversarial and uniform traffic patterns", applied to this
    /// microarchitecture.
    pub fn paper_default() -> Self {
        MisrouteThreshold::Variable { factor: 0.5 }
    }

    /// Resolve to `(Th_min, Th_nonmin)` given the observed `Q_min`.
    #[inline]
    pub fn resolve(&self, q_min: f64) -> (f64, f64) {
        match *self {
            MisrouteThreshold::Static { th_min, th_nonmin } => (th_min, th_nonmin),
            MisrouteThreshold::Variable { factor } => (0.0, factor * q_min),
        }
    }

    /// Whether a candidate non-minimal queue with occupancy `occ` is
    /// admitted given the observed `Q_min`.
    ///
    /// The comparison strictness matters: the variable policy admits
    /// "those queues that have **less than** `factor` times the
    /// occupancy of the minimal one" (§V) — strictly less, so when the
    /// minimal port is merely busy with `Q_min = 0` *nothing* qualifies
    /// and benign traffic is not misrouted. The static policy admits
    /// outputs with "at least `1 − Th_nonmin` of its credit count
    /// available", an inclusive bound.
    #[inline]
    pub fn admits(&self, occ: f64, q_min: f64) -> bool {
        match *self {
            MisrouteThreshold::Static { th_nonmin, .. } => occ <= th_nonmin,
            MisrouteThreshold::Variable { factor } => occ < factor * q_min,
        }
    }
}

/// Congestion-management protection of the escape ring: whether (and at
/// what sensed occupancy) ring entry is deferred beyond the plain
/// patience window. §VI shows the ring is a shared low-bandwidth
/// resource — past saturation it turns from emergency escape into a
/// congestion sink unless admission is protected.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum RingGuard {
    /// Follow the engine configuration: guard at
    /// [`RING_GUARD_DEFAULT`] when `SimConfig::cm_enabled`, off
    /// otherwise.
    #[default]
    Auto,
    /// Never guard (pre-CM behavior; also the `RingAdmitAlways`
    /// mutation-testing defect).
    Off,
    /// Always guard at this sensed-ring-occupancy threshold in `(0, 1]`.
    Threshold(f64),
}

/// Sensed-ring-occupancy threshold used by [`RingGuard::Auto`] when the
/// congestion-management layer is enabled.
///
/// Calibrated against the sensor, not picked as an abstract fraction:
/// `RouterView::sensed_ring_occupancy` aggregates this router's escape
/// output credits over all ring VCs, so at the paper h=2 configuration
/// (three 32-phit ring VCs, 8-phit packets) a single queued packet
/// senses as ≈0.08 and the bubble precondition itself keeps admissible
/// entries below ≈0.83. A threshold of 0.1 therefore means "defer while
/// more than one packet is already queued on this router's escape
/// output" — the highest signal the sensor can show at a moment when
/// entry is still admissible. Fractions like 0.75 are sensed only in
/// transients the bubble already blocks, making a guard there inert.
pub const RING_GUARD_DEFAULT: f64 = 0.1;

/// Extra head-blocked cycles a guarded packet waits past `ring_patience`
/// before the guard yields unconditionally. The bound keeps the §IV-C
/// liveness argument intact: entry is deferred, never denied, and the
/// ranking potentials of the certificate still strictly decrease once
/// the grace expires (`wait` saturates at `u8::MAX`, which always
/// reaches the capped bound).
pub const RING_GUARD_GRACE: u16 = 100;

/// OFAR tunables.
#[derive(Clone, Copy, Debug)]
pub struct OfarConfig {
    /// Misroute threshold policy (§IV-B).
    pub threshold: MisrouteThreshold,
    /// Allow local misrouting (`false` reproduces OFAR-L).
    pub local_misroute: bool,
    /// Cycles a packet must have been blocked at a queue head before the
    /// escape ring is requested. §IV-C makes the ring a *last* resort —
    /// "only if a packet cannot advance": a momentarily full FIFO clears
    /// within a few packet times and a saturated output still serves its
    /// inputs in LRS turns, so only packets stuck well beyond one full
    /// arbitration rotation ask for the escape ring.
    pub ring_patience: u16,
    /// Escape-ring admission protection (congestion management).
    pub ring_guard: RingGuard,
}

impl OfarConfig {
    /// The full OFAR model with the paper's thresholds.
    pub fn base() -> Self {
        Self {
            threshold: MisrouteThreshold::paper_default(),
            local_misroute: true,
            ring_patience: 100,
            ring_guard: RingGuard::Auto,
        }
    }

    /// The OFAR-L dissection model (no local misrouting).
    pub fn without_local() -> Self {
        Self {
            local_misroute: false,
            ..Self::base()
        }
    }
}

/// The OFAR routing/flow-control mechanism.
#[derive(Clone, Debug)]
pub struct OfarPolicy {
    ladder: VcLadder, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    vcs_injection: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    ofar: OfarConfig,
    /// Resolved ring-guard threshold (`None` = unguarded); derived from
    /// `ofar.ring_guard` and `cfg.cm_enabled` at construction.
    guard: Option<f64>, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    lanes: RngLanes,
    probe: ProbeState, // lint:allow(S001, probe telemetry; diagnostic counters deliberately reset on restore)
}

impl OfarPolicy {
    /// Full OFAR with paper-default thresholds.
    pub fn new(cfg: &SimConfig, seed: u64) -> Self {
        Self::with_config(cfg, seed, OfarConfig::base())
    }

    /// OFAR-L (no local misrouting).
    pub fn without_local(cfg: &SimConfig, seed: u64) -> Self {
        Self::with_config(cfg, seed, OfarConfig::without_local())
    }

    /// Explicit tunables (threshold ablations).
    pub fn with_config(cfg: &SimConfig, seed: u64, ofar: OfarConfig) -> Self {
        let guard = match ofar.ring_guard {
            RingGuard::Auto => cfg.cm_enabled.then_some(RING_GUARD_DEFAULT),
            RingGuard::Off => None,
            RingGuard::Threshold(th) => Some(th),
        };
        Self {
            ladder: VcLadder::new(cfg.vcs_local, cfg.vcs_global),
            vcs_injection: cfg.vcs_injection,
            ofar,
            guard,
            // "OFAR": misroute-candidate picks happen in `route`, one
            // reservoir stream per deciding router.
            lanes: RngLanes::new(seed ^ 0x0FA2, cfg.params.routers(), cfg.params.nodes()),
            probe: ProbeState::default(),
        }
    }

    /// Whether the escape-ring admission guard is active, and at what
    /// sensed-occupancy threshold.
    pub fn ring_guard_threshold(&self) -> Option<f64> {
        self.guard
    }

    /// §IV-C last-resort gate, congestion-management aware: true once
    /// the packet has been head-blocked past `ring_patience` — except
    /// that with the ring guard active and the local escape outputs
    /// sensed above the guard threshold, entry is deferred for up to
    /// [`RING_GUARD_GRACE`] further cycles. The deferral is *bounded*:
    /// past the grace (or once `wait` saturates) the packet enters
    /// regardless of occupancy, so the certificate's ranking potentials
    /// still strictly decrease and no packet is denied its escape.
    fn ring_entry_due(&self, view: &RouterView<'_>, wait: u8) -> bool {
        let patience = self.ofar.ring_patience.min(u16::from(u8::MAX));
        let w = u16::from(wait);
        if w < patience {
            return false;
        }
        if let Some(th) = self.guard {
            let grace_end = patience
                .saturating_add(RING_GUARD_GRACE)
                .min(u16::from(u8::MAX));
            if w < grace_end && view.sensed_ring_occupancy() > th {
                return false;
            }
        }
        true
    }

    /// Whether local misrouting is enabled (base OFAR vs OFAR-L).
    pub fn local_misroute_enabled(&self) -> bool {
        self.ofar.local_misroute
    }

    /// Canonical VCs of an output port — excludes an embedded escape VC,
    /// which only ring traffic may use.
    fn canonical_vcs(&self, view: &RouterView<'_>, port: usize) -> usize {
        match view.fab.out_kind(port) {
            ofar_engine::PortKind::Local => self.ladder.vcs_local,
            ofar_engine::PortKind::Global => self.ladder.vcs_global,
            _ => 0,
        }
    }

    /// VC with most free space for a packet leaving the ring: ring exit
    /// is not part of the ladder, and OFAR does not need VC order for
    /// deadlock freedom, so any canonical VC with room maximizes the
    /// exit opportunities §IV-C calls for. Canonical traffic sticks to
    /// the position ladder (keeping the dependency graph mostly acyclic
    /// keeps deadlock — and hence ring traffic — rare, per [8]).
    fn exit_vc(&self, view: &RouterView<'_>, port: usize, preferred: usize) -> usize {
        if view.credits(port, preferred) >= view.packet_phits() {
            return preferred;
        }
        (0..self.canonical_vcs(view, port))
            .max_by_key(|&vc| view.credits(port, vc))
            .unwrap_or(preferred)
    }

    /// Pick a random eligible non-minimal output among `ports`,
    /// excluding `exclude`, requiring availability and the §IV-B
    /// occupancy condition (`admit` on the candidate's occupancy).
    fn pick_candidate(
        &mut self,
        view: &RouterView<'_>,
        ports: impl Iterator<Item = usize>,
        vc: usize,
        exclude: usize,
        admit: impl Fn(f64) -> bool,
    ) -> Option<usize> {
        // Probed (conformance checking): materialize the admissible list
        // — same filter as below — and take the pinned index. Only the
        // deciding pick of a call has a nonempty list (every earlier one
        // fell through empty), so the max is its size.
        if let Some(pin) = self.probe.pin {
            let cands: Vec<usize> = ports
                .filter(|&port| {
                    port != exclude && view.available(port, vc) && admit(view.occupancy(port, vc))
                })
                // lint:allow(H001, probe-pin path only; the production reservoir-sampling path does not allocate)
                .collect();
            // lint:allow(P002, candidate count bounded by router radix)
            self.probe.feedback.candidates = self.probe.feedback.candidates.max(cands.len() as u32);
            return (!cands.is_empty()).then(|| cands[pin.candidate % cands.len()]);
        }
        // Reservoir-sample uniformly without allocating, drawing from
        // the deciding router's own lane so the pick sequence is keyed
        // by the shard, not the route-loop schedule.
        let rng = self.lanes.router(view.router.idx());
        let mut chosen = None;
        let mut seen = 0u32;
        for port in ports {
            if port == exclude || !view.available(port, vc) || !admit(view.occupancy(port, vc)) {
                continue;
            }
            seen += 1;
            if rng.gen_range(0..seen) == 0 {
                chosen = Some(port);
            }
        }
        chosen
    }

    /// Routing for a packet travelling on the escape ring: deliver if
    /// home, abandon if a minimal output is available (bounded), else
    /// keep circulating — on the *same* ring the packet entered (each
    /// ring's bubble invariant is per ring; hopping between rings
    /// mid-flight would be a fresh, bubble-gated entry).
    ///
    /// §VII failover: when the ring has *died* under the packet (a link
    /// or router along it failed), it must never advance into the gap.
    /// It leaves through the minimal output if possible, else through
    /// any live canonical port — in both cases ignoring the exit budget
    /// (an emergency exit, not a voluntary one).
    fn route_on_ring(
        &mut self,
        view: &RouterView<'_>,
        input: InputCtx,
        pkt: &Packet,
        min_hop: Option<MinimalHop>,
    ) -> Option<Request> {
        let ring = view
            .fab
            .ring_of_input(view.router, input.port, input.vc)
            // lint:allow(P001, on-ring packets always carry an escape class by the verified dependency ladder)
            .expect("on-ring packet outside an escape buffer");
        let ring_dead = !view.ring_up(ring);
        if let Some(min_hop) = min_hop {
            let mut min_req =
                hop_to_request(view, pkt, min_hop, &self.ladder, RequestKind::Minimal);
            if min_req.kind == RequestKind::Eject {
                return Some(min_req); // deliver straight from the ring
            }
            min_req.out_vc =
                // lint:allow(P002, vc index bounded by the VC ladder depth well below 256)
                self.exit_vc(view, min_req.out_port as usize, min_req.out_vc as usize) as u8;
            if (pkt.ring_exits_left > 0 || ring_dead)
                && view.available(min_req.out_port as usize, min_req.out_vc as usize)
            {
                return Some(Request {
                    kind: RequestKind::RingExit,
                    ..min_req
                });
            }
        }
        if ring_dead {
            // Emergency exit through any live canonical port with room;
            // if every port is busy, wait — re-evaluated next cycle.
            let pos = group_pos(view, pkt);
            let a = view.fab.cfg().params.a;
            let h = view.fab.cfg().params.h;
            let lvc = self.ladder.local_vc(pkt, pos);
            let ports = (0..a - 1).map(|j| view.fab.local_out(j));
            if let Some(port) = self.pick_candidate(view, ports, lvc, usize::MAX, |_| true) {
                return Some(Request::new(port, lvc, RequestKind::RingExit));
            }
            let gvc = self.ladder.global_vc(pos);
            let ports = (0..h).map(|k| view.fab.global_out(k));
            if let Some(port) = self.pick_candidate(view, ports, gvc, usize::MAX, |_| true) {
                return Some(Request::new(port, gvc, RequestKind::RingExit));
            }
            return None;
        }
        let (port, vc) = view
            .escape_vc_of_ring(ring)
            // lint:allow(P001, a live ring always exposes an escape output; checked by ring liveness)
            .expect("live ring without an escape output");
        Some(Request::new(port, vc, RequestKind::RingAdvance))
    }

    /// Last-resort rerouting when every minimal direction is severed by
    /// faults (§VII): divert through any live global port (reaching a
    /// group whose path to the destination may survive), else a live
    /// local port, else — after the usual patience — a surviving escape
    /// ring. Header-flag limits are ignored: the §IV-A path bound cannot
    /// hold on a faulted network, and livelock is bounded by the
    /// surviving topology, not the flags.
    fn forced_reroute(&mut self, view: &RouterView<'_>, pkt: &Packet) -> Option<Request> {
        let pos = group_pos(view, pkt);
        let a = view.fab.cfg().params.a;
        let h = view.fab.cfg().params.h;
        let gvc = self.ladder.global_vc(pos);
        let ports = (0..h).map(|k| view.fab.global_out(k));
        if let Some(port) = self.pick_candidate(view, ports, gvc, usize::MAX, |_| true) {
            return Some(Request::new(port, gvc, RequestKind::MisrouteGlobal));
        }
        let lvc = self.ladder.local_vc(pkt, pos);
        let ports = (0..a - 1).map(|j| view.fab.local_out(j));
        if let Some(port) = self.pick_candidate(view, ports, lvc, usize::MAX, |_| true) {
            return Some(Request::new(port, lvc, RequestKind::MisrouteLocal));
        }
        if self.ring_entry_due(view, pkt.wait) {
            if let Some((port, vc)) = view.best_escape_vc() {
                return Some(Request::new(port, vc, RequestKind::RingEnter));
            }
        }
        None
    }
}

impl Policy for OfarPolicy {
    fn name(&self) -> &'static str {
        if self.ofar.local_misroute {
            "OFAR"
        } else {
            "OFAR-L"
        }
    }

    fn needs_ring(&self) -> bool {
        true
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        let topo = view.fab.topo();
        // Over surviving links only; `None` means the minimal direction
        // is severed and the packet must divert (§VII).
        let min_hop = live_minimal_hop(view, pkt);

        if pkt.on_ring() {
            return self.route_on_ring(view, input, pkt, min_hop);
        }

        let Some(min_hop) = min_hop else {
            pkt.wait = pkt.wait.saturating_add(1);
            return self.forced_reroute(view, pkt);
        };

        let min_req = hop_to_request(view, pkt, min_hop, &self.ladder, RequestKind::Minimal);
        if min_req.kind == RequestKind::Eject {
            // Never misroute a packet whose only remaining step is
            // delivery; it just waits for its ejection port.
            return Some(min_req);
        }
        // Head-blocked time: grows every cycle the packet stays unrouted
        // (the engine calls route() exactly once per head packet per
        // cycle and resets the counter on every grant).
        pkt.wait = pkt.wait.saturating_add(1);

        let min_port = min_req.out_port as usize;
        let min_vc = min_req.out_vc as usize;
        let q_min = view.occupancy(min_port, min_vc);
        let (th_min, _) = self.ofar.threshold.resolve(q_min);

        let here = view.group();
        let src_group = topo.group_of_node(pkt.src);
        let dst_group = topo.group_of_node(pkt.dst);
        let internal = src_group == dst_group;

        // §IV-A: "packets in local queues are first misrouted locally,
        // and then globally" — after its local misroute in the source
        // group the packet is committed to leaving through a global port
        // of its *current* router. Walking back to the minimal exit
        // router would spend a third source-group local hop and break
        // the paper's 8-hop (6 local + 2 global) ceiling.
        if here == src_group
            && !internal
            && pkt.has(FLAG_LOCAL_MISROUTED)
            && !pkt.has(FLAG_GLOBAL_MISROUTED)
            && matches!(min_hop, MinimalHop::Local { .. })
        {
            // The packet is committed to a non-minimal path: like a
            // Valiant phase-1 hop, any global port with room will do —
            // the uniform random pick over available ports is what
            // balances the group's global links.
            let vc = self.ladder.global_vc(crate::common::GroupPos::Source);
            let h = view.fab.cfg().params.h;
            let ports = (0..h).map(|k| view.fab.global_out(k));
            if let Some(port) = self.pick_candidate(view, ports, vc, usize::MAX, |_| true) {
                return Some(Request::new(port, vc, RequestKind::MisrouteGlobal));
            }
            // Every global port busy or out of credits: wait here
            // (re-evaluated next cycle), with the escape ring as the
            // patience-bounded backstop.
            if self.ring_entry_due(view, pkt.wait) {
                if let Some((port, vc)) = view.best_escape_vc() {
                    return Some(Request::new(port, vc, RequestKind::RingEnter));
                }
            }
            return None;
        }

        // §IV-B: misroute only when Q_min ≥ Th_min and the minimal port
        // is unavailable. The paper's unavailability has two arms —
        // "assigned to another input" or "Q_min = 100%". With
        // whole-packet VCT grants the first arm is true on most cycles
        // at any utilization (every grant holds the port for a full
        // packet time), so taking it literally misroutes benign traffic
        // en masse; the discriminating signal at packet granularity is
        // the second arm: the minimal VC has no space for this packet.
        if view.credits(min_port, min_vc) >= view.packet_phits() || q_min < th_min {
            return Some(min_req);
        }

        // --- §IV-A: which misroute class is allowed here? ---
        let (try_local, try_global) = if here == src_group && !internal {
            match input.kind {
                // Injection queues misroute globally, saving the first
                // local hop of a Valiant path.
                PortKind::Node => (false, !pkt.has(FLAG_GLOBAL_MISROUTED)),
                // Local queues misroute locally first, then globally
                // (starvation rule).
                _ => {
                    if self.ofar.local_misroute && !pkt.has(FLAG_LOCAL_MISROUTED) {
                        (true, false)
                    } else {
                        (false, !pkt.has(FLAG_GLOBAL_MISROUTED))
                    }
                }
            }
        } else {
            // Intermediate/destination group, or intra-group traffic:
            // only local misrouting, and only when the minimal output is
            // a (saturated) local port.
            let local_ok = self.ofar.local_misroute
                && !pkt.has(FLAG_LOCAL_MISROUTED)
                && matches!(min_hop, MinimalHop::Local { .. });
            (local_ok, false)
        };

        let fab = view.fab;
        let a = fab.cfg().params.a;
        let h = fab.cfg().params.h;
        let threshold = self.ofar.threshold;
        let admit = move |occ: f64| threshold.admits(occ, q_min);
        if try_local {
            let vc = self
                .ladder
                .local_vc(pkt, crate::common::group_pos(view, pkt));
            let ports = (0..a - 1).map(|j| fab.local_out(j));
            if let Some(port) = self.pick_candidate(view, ports, vc, min_port, admit) {
                return Some(Request::new(port, vc, RequestKind::MisrouteLocal));
            }
        }
        if try_global {
            // Global misroutes only happen in the source group (§IV-A).
            let vc = self.ladder.global_vc(crate::common::GroupPos::Source);
            let ports = (0..h).map(|k| fab.global_out(k));
            if let Some(port) = self.pick_candidate(view, ports, vc, min_port, admit) {
                return Some(Request::new(port, vc, RequestKind::MisrouteGlobal));
            }
        }

        // --- §IV-C: escape ring as last resort — the packet must have
        // been head-blocked past the patience window and the minimal
        // path must have no downstream space at all. The patience keeps
        // ordinary arbitration waits (a saturated output rotates over
        // ~2h·VC competitors at 8 cycles each) off the ring, while
        // packets caught in a stalled dependency chain — OFAR's
        // source-group local misroutes can close VC cycles — escape
        // within ~patience cycles. See the `ablation_patience` bench for
        // the sensitivity study behind the default. ---
        if self.ring_entry_due(view, pkt.wait)
            && view.credits(min_port, min_vc) < view.packet_phits()
        {
            if let Some((port, vc)) = view.best_escape_vc() {
                return Some(Request::new(port, vc, RequestKind::RingEnter));
            }
        }
        Some(min_req)
    }

    fn on_inject(&mut self, _view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        injection_vc(self.vcs_injection, pkt)
    }
}

crate::probe::impl_enumerable_via_probe!(OfarPolicy);

impl OfarPolicy {
    /// Checkpoint hook: OFAR's only policy-side dynamic state is its
    /// tie-break RNG — the ring-patience counter travels in each packet
    /// header (`wait`), so it rides the engine's own sections.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        self.lanes.save(out);
    }

    /// Restore the lane table captured by [`OfarPolicy::save_state`].
    pub(crate) fn load_state(&mut self, data: &[u8]) -> Result<(), String> {
        self.lanes.load(data, "OFAR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_engine::{Network, RingMode};
    use ofar_topology::NodeId;

    fn cfg() -> SimConfig {
        SimConfig::paper(2).with_ring(RingMode::Embedded)
    }

    #[test]
    fn thresholds_resolve_per_paper() {
        let v = MisrouteThreshold::paper_default();
        assert_eq!(v.resolve(0.5), (0.0, 0.25));
        // candidate admission is strict for the variable policy …
        assert!(!v.admits(0.25, 0.5));
        assert!(v.admits(0.24, 0.5));
        // … and inclusive for the static one
        let st = MisrouteThreshold::Static {
            th_min: 1.0,
            th_nonmin: 0.4,
        };
        assert!(st.admits(0.4, 0.9));
        assert!(!st.admits(0.41, 0.9));
        let s = MisrouteThreshold::Static {
            th_min: 1.0,
            th_nonmin: 0.4,
        };
        assert_eq!(s.resolve(0.8), (1.0, 0.4));
    }

    #[test]
    fn ofar_delivers_minimally_at_zero_load() {
        let cfg = cfg();
        let mut net = Network::new(cfg, OfarPolicy::new(&cfg, 11));
        let last = NodeId::from(net.num_nodes() - 1);
        net.generate(NodeId::new(0), last);
        net.run(500);
        let s = net.stats();
        assert_eq!(s.delivered_packets, 1);
        assert!(s.hop_sum <= 3, "zero-load OFAR must be minimal");
        assert_eq!(s.local_misroutes + s.global_misroutes, 0);
        assert_eq!(s.ring_entries, 0, "ring must not be used at zero load");
    }

    #[test]
    fn ofar_l_never_misroutes_locally() {
        let cfg = cfg();
        let mut net = Network::new(cfg, OfarPolicy::without_local(&cfg, 11));
        assert_eq!(net.policy().name(), "OFAR-L");
        // hammer one group pair to force adaptivity
        let per_group = cfg.params.a * cfg.params.p;
        for cycle in 0..3000u64 {
            if cycle % 8 == 0 {
                for n in 0..per_group {
                    net.generate(
                        NodeId::from(n),
                        NodeId::from(per_group + (n + 1) % per_group),
                    );
                }
            }
            net.step();
        }
        assert!(net.stats().delivered_packets > 100);
        assert_eq!(net.stats().local_misroutes, 0);
    }

    #[test]
    fn ofar_canonical_paths_respect_the_8_hop_bound() {
        // ADV-style pressure, then check hop ceiling: ≤ 2 global + 6
        // local canonical hops per packet (ring hops tracked separately).
        let cfg = cfg();
        let mut net = Network::new(cfg, OfarPolicy::new(&cfg, 5));
        net.enable_delivery_log();
        let per_group = cfg.params.a * cfg.params.p;
        let nodes = net.num_nodes();
        for cycle in 0..4000u64 {
            if cycle % 6 == 0 {
                for n in 0..nodes {
                    let dst = (n + 2 * per_group) % nodes;
                    net.generate(NodeId::from(n), NodeId::from(dst));
                }
            }
            net.step();
        }
        let s = net.stats();
        assert!(s.delivered_packets > 500);
        // average includes ring hops; the canonical ceiling is checked
        // via the per-packet counters in the engine integration tests,
        // here we check misrouting actually happened under pressure.
        assert!(
            s.local_misroutes + s.global_misroutes > 0,
            "OFAR must adapt under adversarial pressure"
        );
    }

    #[test]
    fn ring_guard_resolution_follows_config() {
        let base = cfg();
        let cm = cfg().with_cm();
        // Auto follows cm_enabled.
        let auto = OfarConfig::base();
        assert_eq!(
            OfarPolicy::with_config(&base, 1, auto).ring_guard_threshold(),
            None
        );
        assert_eq!(
            OfarPolicy::with_config(&cm, 1, auto).ring_guard_threshold(),
            Some(RING_GUARD_DEFAULT)
        );
        // Off wins even with CM on; an explicit threshold wins even
        // without it.
        let off = OfarConfig {
            ring_guard: RingGuard::Off,
            ..OfarConfig::base()
        };
        assert_eq!(
            OfarPolicy::with_config(&cm, 1, off).ring_guard_threshold(),
            None
        );
        let th = OfarConfig {
            ring_guard: RingGuard::Threshold(0.5),
            ..OfarConfig::base()
        };
        assert_eq!(
            OfarPolicy::with_config(&base, 1, th).ring_guard_threshold(),
            Some(0.5)
        );
    }

    #[test]
    fn ring_guard_defers_but_never_denies_entry() {
        // A guard threshold below zero treats the ring as always
        // congested, so every admission is deferred exactly the grace:
        // a guarded patience-1 policy must behave *identically* to an
        // unguarded policy with patience 1 + RING_GUARD_GRACE, and both
        // must still reach the ring (liveness) — just later than the
        // unguarded patience-1 baseline (deferral). Misrouting is
        // disabled so head blocking accumulates.
        let cfg = cfg();
        let run = |patience: u16, guard: RingGuard| {
            let ofar = OfarConfig {
                ring_patience: patience,
                ring_guard: guard,
                threshold: MisrouteThreshold::Static {
                    th_min: 0.0,
                    th_nonmin: -1.0,
                },
                ..OfarConfig::base()
            };
            let mut net = Network::new(cfg, OfarPolicy::with_config(&cfg, 7, ofar));
            let per_group = cfg.params.a * cfg.params.p;
            for cycle in 0..6000u64 {
                if cycle % 4 == 0 {
                    for n in 0..per_group {
                        net.generate(NodeId::from(n), NodeId::from(per_group + n));
                    }
                }
                net.step();
            }
            assert!(net.stats().delivered_packets > 100);
            (net.stats().ring_entries, net.stats().delivered_packets)
        };
        let eager = run(1, RingGuard::Off);
        let guarded = run(1, RingGuard::Threshold(-1.0));
        let patient = run(1 + RING_GUARD_GRACE, RingGuard::Off);
        assert!(eager.0 > 0, "unguarded patience-1 OFAR must use the ring");
        assert!(guarded.0 > 0, "guard grace must still admit ring entries");
        assert!(
            guarded.0 < eager.0,
            "guard must defer admissions: {guarded:?} vs {eager:?}"
        );
        assert_eq!(
            guarded, patient,
            "always-on guard must equal patience+grace exactly"
        );
    }
}
