//! MIN: deterministic minimal routing (§V).
//!
//! Every packet follows its unique minimal `l? g? l?` path, on the
//! ascending VC ladder. Optimal under uniform traffic; collapses to
//! `1/(2h²)` under adversarial inter-group patterns (§III).

use crate::common::{hop_to_request, injection_vc, live_minimal_hop, VcLadder};
use ofar_engine::{InputCtx, Packet, Policy, Request, RequestKind, RouterView, SimConfig};

/// Minimal routing.
#[derive(Clone, Debug)]
pub struct MinPolicy {
    ladder: VcLadder,
    vcs_injection: usize,
}

impl MinPolicy {
    /// Build for a simulator configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        Self {
            ladder: VcLadder::new(cfg.vcs_local, cfg.vcs_global),
            vcs_injection: cfg.vcs_injection,
        }
    }
}

impl Policy for MinPolicy {
    fn name(&self) -> &'static str {
        "MIN"
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        _input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        // MIN is oblivious: when its one minimal direction is severed by
        // a fault it simply waits; the run watchdog diagnoses the
        // partition. Dead local links are detoured inside the group.
        let hop = live_minimal_hop(view, pkt)?;
        Some(hop_to_request(
            view,
            pkt,
            hop,
            &self.ladder,
            RequestKind::Minimal,
        ))
    }

    fn on_inject(&mut self, _view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        injection_vc(self.vcs_injection, pkt)
    }
}

// MIN is deterministic: no choices to pin, nothing ever sampled.
crate::probe::impl_enumerable_deterministic!(MinPolicy);

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_engine::Network;
    use ofar_topology::NodeId;

    #[test]
    fn min_delivers_across_the_diameter() {
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, MinPolicy::new(&cfg));
        // farthest corner to corner: node 0 to the last node
        let last = NodeId::from(net.num_nodes() - 1);
        net.generate(NodeId::new(0), last);
        net.run(500);
        assert_eq!(net.stats().delivered_packets, 1);
        // l-g-l is at most 3 hops
        assert!(net.stats().hop_sum <= 3);
        assert_eq!(
            net.stats().local_misroutes + net.stats().global_misroutes,
            0
        );
    }

    #[test]
    fn min_zero_load_latency_is_sane() {
        // one local hop + one global + one local = ~10+100+10 plus router
        // and serialization overheads; must be well under 200 cycles.
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, MinPolicy::new(&cfg));
        let last = NodeId::from(net.num_nodes() - 1);
        net.generate(NodeId::new(0), last);
        net.run(500);
        let lat = net.stats().avg_latency();
        assert!(lat > 100.0 && lat < 200.0, "zero-load latency {lat}");
    }
}
