//! PAR: Progressive Adaptive Routing (Jiang, Kim & Dally, ISCA 2009).
//!
//! The OFAR paper cites PAR (§I, §II) as the one prior mechanism that can
//! revisit the min/Valiant decision after injection — but only *once*,
//! at the second router of the source group, and only by paying for an
//! extra local virtual channel (`vcs_local = 4`). It is implemented here
//! as a baseline extension to complete the mechanism family.
//!
//! Model: at injection the source router takes a UGAL-L-style decision
//! from its **local** queues only. If the minimal path's global channel
//! is not hosted by the injection router, the decision is provisional
//! (the packet is marked with [`FLAG_AUX`]); when the packet reaches the
//! router that hosts the channel, the decision is re-evaluated with live
//! credits and, if the channel is saturated, the packet diverts to a
//! Valiant path from there. The extra local VC keeps the ascending-VC
//! deadlock argument intact for the (up to) two source-group local hops.

use crate::common::{hop_to_request, injection_vc, live_minimal_hop, VcLadder};
use crate::probe::ProbeState;
use crate::state::RngLanes;
use crate::valiant::ValiantPolicy;
use ofar_engine::{
    InputCtx, Packet, Policy, Request, RequestKind, RouterView, SimConfig, FLAG_AUX,
};
use ofar_topology::GroupId;
use rand::rngs::SmallRng;

/// PAR tunables.
#[derive(Clone, Copy, Debug)]
pub struct ParConfig {
    /// A global channel is considered saturated when its mean occupancy
    /// exceeds this fraction.
    pub saturation_threshold: f64,
}

impl Default for ParConfig {
    fn default() -> Self {
        Self {
            saturation_threshold: 0.25,
        }
    }
}

/// Progressive Adaptive Routing.
#[derive(Clone, Debug)]
pub struct ParPolicy {
    ladder: VcLadder, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    vcs_injection: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    vcs_global: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    groups: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    par: ParConfig,
    lanes: RngLanes,
    probe: ProbeState, // lint:allow(S001, probe telemetry; diagnostic counters deliberately reset on restore)
}

impl ParPolicy {
    /// Build for a simulator configuration.
    ///
    /// # Panics
    /// Panics unless `cfg.vcs_local ≥ 4` — PAR's second source-group
    /// local hop needs the extra VC (§II).
    pub fn new(cfg: &SimConfig, seed: u64) -> Self {
        assert!(
            cfg.vcs_local >= 4,
            "PAR requires 4 local VCs (got {}); use SimConfig with vcs_local = 4",
            cfg.vcs_local
        );
        Self {
            ladder: VcLadder::new(cfg.vcs_local, cfg.vcs_global),
            vcs_injection: cfg.vcs_injection,
            vcs_global: cfg.vcs_global,
            groups: cfg.params.groups(),
            par: ParConfig::default(),
            // "PAR": diverts happen at injection (node shard) *and* at
            // the progressive re-evaluation (router shard); each draw
            // comes from the deciding shard's lane.
            lanes: RngLanes::new(seed ^ 0x504152, cfg.params.routers(), cfg.params.nodes()),
            probe: ProbeState::default(),
        }
    }

    /// Live mean occupancy of global port `k` of the current router.
    fn live_global_occupancy(&self, view: &RouterView<'_>, k: usize) -> f64 {
        let port = view.fab.global_out(k);
        (0..self.vcs_global)
            .map(|vc| view.occupancy(port, vc))
            .sum::<f64>()
            / self.vcs_global as f64
    }

    /// Divert `pkt` onto a Valiant path, drawing the intermediate from
    /// `rng` — the *deciding shard's* lane: the injecting node's at
    /// injection time, the re-evaluating router's at the progressive
    /// step.
    fn divert(
        probe: &mut ProbeState,
        rng: &mut SmallRng,
        groups: usize,
        pkt: &mut Packet,
        src: GroupId,
        dst: GroupId,
    ) {
        pkt.intermediate =
            Some(probe.intermediate_or(|| ValiantPolicy::pick_intermediate(rng, groups, src, dst)));
    }
}

impl Policy for ParPolicy {
    fn name(&self) -> &'static str {
        "PAR"
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        _input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        // Progressive re-evaluation: the packet carried a provisional
        // minimal decision and is now at the router hosting the minimal
        // global channel of the source group.
        if pkt.has(FLAG_AUX) {
            let topo = view.fab.topo();
            let src_group = topo.group_of_node(pkt.src);
            let dst_group = topo.group_of_node(pkt.dst);
            if view.group() == src_group {
                let (host, k) = topo.global_link_from(src_group, dst_group);
                if host == view.router {
                    pkt.clear(FLAG_AUX);
                    if self.live_global_occupancy(view, k) > self.par.saturation_threshold {
                        let Self {
                            probe,
                            lanes,
                            groups,
                            ..
                        } = self;
                        Self::divert(
                            probe,
                            lanes.router(view.router.idx()),
                            *groups,
                            pkt,
                            src_group,
                            dst_group,
                        );
                    }
                }
            } else {
                pkt.clear(FLAG_AUX); // left the source group; decision moot
            }
        }
        if let Some(hop) = live_minimal_hop(view, pkt) {
            return Some(hop_to_request(
                view,
                pkt,
                hop,
                &self.ladder,
                RequestKind::Minimal,
            ));
        }
        // Current leg severed by a fault. In the source group, divert to
        // a Valiant path (PAR may re-decide there); mid-route, drop a
        // dead intermediate and head for the destination.
        let topo = view.fab.topo();
        let src_group = topo.group_of_node(pkt.src);
        let dst_group = topo.group_of_node(pkt.dst);
        if pkt.intermediate.take().is_none() && view.group() == src_group && src_group != dst_group
        {
            pkt.clear(FLAG_AUX);
            let Self {
                probe,
                lanes,
                groups,
                ..
            } = self;
            Self::divert(
                probe,
                lanes.router(view.router.idx()),
                *groups,
                pkt,
                src_group,
                dst_group,
            );
        }
        live_minimal_hop(view, pkt)
            .map(|hop| hop_to_request(view, pkt, hop, &self.ladder, RequestKind::Minimal))
    }

    fn on_inject(&mut self, view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        let topo = view.fab.topo();
        let src_group = topo.group_of_node(pkt.src);
        let dst_group = topo.group_of_node(pkt.dst);
        if src_group != dst_group && pkt.intermediate.is_none() && !pkt.has(FLAG_AUX) {
            let (host, k) = topo.global_link_from(src_group, dst_group);
            if host == view.router {
                // The minimal channel is local: decide now, finally.
                if self.live_global_occupancy(view, k) > self.par.saturation_threshold {
                    let Self {
                        probe,
                        lanes,
                        groups,
                        ..
                    } = self;
                    Self::divert(
                        probe,
                        lanes.node(pkt.src.idx()),
                        *groups,
                        pkt,
                        src_group,
                        dst_group,
                    );
                }
            } else {
                // Provisionally minimal; re-evaluate at the hosting
                // router (the "progressive" step).
                pkt.set(FLAG_AUX);
            }
        }
        injection_vc(self.vcs_injection, pkt)
    }
}

crate::probe::impl_enumerable_via_probe!(ParPolicy);

/// The `vcs_local = 4` configuration PAR needs, derived from a base
/// config.
pub fn par_config(mut cfg: SimConfig) -> SimConfig {
    cfg.vcs_local = 4;
    cfg
}

impl ParPolicy {
    /// Checkpoint hook: PAR's only dynamic state is its tie-break lane
    /// table.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        self.lanes.save(out);
    }

    /// Restore the lane table captured by [`ParPolicy::save_state`].
    pub(crate) fn load_state(&mut self, data: &[u8]) -> Result<(), String> {
        self.lanes.load(data, "PAR")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_engine::Network;
    use ofar_topology::NodeId;

    #[test]
    #[should_panic(expected = "PAR requires 4 local VCs")]
    fn par_rejects_three_local_vcs() {
        let cfg = SimConfig::paper(2);
        let _ = ParPolicy::new(&cfg, 1);
    }

    #[test]
    fn par_minimal_when_uncongested() {
        let cfg = par_config(SimConfig::paper(2));
        let mut net = Network::new(cfg, ParPolicy::new(&cfg, 1));
        let last = NodeId::from(net.num_nodes() - 1);
        net.generate(NodeId::new(0), last);
        net.run(500);
        assert_eq!(net.stats().delivered_packets, 1);
        assert!(net.stats().hop_sum <= 3);
    }

    #[test]
    fn par_diverts_under_pressure() {
        let cfg = par_config(SimConfig::paper(2));
        let mut net = Network::new(cfg, ParPolicy::new(&cfg, 1));
        let per_group = cfg.params.a * cfg.params.p;
        for cycle in 0..4000u64 {
            if cycle % 8 == 0 {
                for n in 0..per_group {
                    net.generate(
                        NodeId::from(n),
                        NodeId::from(per_group + (n + cycle as usize) % per_group),
                    );
                }
            }
            net.step();
        }
        let s = net.stats();
        assert!(s.delivered_packets > 100);
        assert!(s.avg_hops() > 3.01, "PAR never diverted: {}", s.avg_hops());
    }
}
