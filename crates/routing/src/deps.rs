//! Channel-dependency declarations: each mechanism exports the set of
//! legal (port-class, VC) → (port-class, VC) transitions its routing
//! function can produce, so the static verifier (`ofar-verify`) can
//! instantiate the concrete channel dependency graph over an actual
//! topology and prove deadlock freedom *before cycle 0*.
//!
//! The declarations are deliberately an **over-approximation**: every
//! transition the mechanism can take on a healthy network must be
//! declared, and declaring an impossible transition only makes the
//! verifier more conservative (it can reject, never wrongly accept).
//! Fault-driven detours (§VII) are excluded — degraded operation is
//! policed at runtime by the watchdog (`StallKind`) and the auditor,
//! not by the static certificate.

use ofar_engine::SimConfig;

use crate::mechanism::MechanismKind;

/// An abstract channel class: one equivalence class of (port-class, VC)
/// pairs that the ladder treats identically on every router.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ClassId {
    /// An injection-queue VC. Only ever a dependency *source* (nothing in
    /// the network waits for space in an injection queue — the unbounded
    /// source queue above it absorbs back-pressure), so injection classes
    /// can never participate in a cycle.
    Inject {
        /// Injection VC index.
        vc: u8,
    },
    /// A local-link VC.
    Local {
        /// VC index on the local link.
        vc: u8,
    },
    /// A global-link VC.
    Global {
        /// VC index on the global link.
        vc: u8,
    },
    /// Any escape-subnetwork channel: a physical ring-port VC or the
    /// extra embedded escape VC on a ring-edge link. The verifier expands
    /// this per ring; advance transitions never leave the packet's ring.
    Escape,
}

impl std::fmt::Display for ClassId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            Self::Inject { vc } => write!(f, "inj:v{vc}"),
            Self::Local { vc } => write!(f, "local:v{vc}"),
            Self::Global { vc } => write!(f, "global:v{vc}"),
            Self::Escape => write!(f, "escape"),
        }
    }
}

/// Why a declared transition exists — names the offending move when a
/// verification report prints a cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeWhy {
    /// First hop out of an injection queue.
    Inject,
    /// A hop along the minimal (or committed Valiant) path.
    Minimal,
    /// An in-transit local misroute (§IV-A) or PAR's second source-group
    /// hop.
    MisrouteLocal,
    /// An in-transit global misroute (§IV-A).
    MisrouteGlobal,
    /// Entry into the escape subnetwork (§IV-C).
    RingEnter,
    /// A hop along the escape ring.
    RingAdvance,
    /// Exit from the escape subnetwork back into a canonical VC.
    RingExit,
}

/// One declared class-level dependency.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ClassEdge {
    /// Class a packet currently occupies.
    pub from: ClassId,
    /// Class it may request next.
    pub to: ClassId,
    /// The routing move that creates the dependency.
    pub why: EdgeWhy,
}

/// The full dependency declaration of one mechanism under one
/// configuration.
#[derive(Clone, Debug)]
pub struct MechanismDeps {
    /// Mechanism name (matches [`MechanismKind::name`]).
    pub mechanism: &'static str,
    /// Whether deadlock freedom is delegated to the escape subnetwork
    /// (OFAR models) rather than proven by VC-order acyclicity.
    pub uses_escape: bool,
    /// Declared class-level transitions, deduplicated.
    pub edges: Vec<ClassEdge>,
}

impl MechanismDeps {
    /// All edges out of `from`.
    pub fn from(&self, from: ClassId) -> impl Iterator<Item = &ClassEdge> + '_ {
        self.edges.iter().filter(move |e| e.from == from)
    }

    /// Whether `from` has a declared entry into the escape layer.
    pub fn drains_to_escape(&self, from: ClassId) -> bool {
        self.edges
            .iter()
            .any(|e| e.from == from && e.to == ClassId::Escape)
    }
}

/// Exports the channel-dependency declaration of a routing mechanism.
///
/// Implemented on [`MechanismKind`] (and through it on the built policy
/// values) so the verifier can certify a `(mechanism, SimConfig)` pair
/// without instantiating a policy.
pub trait DependencyDecl {
    /// The declared transitions under `cfg` (the VC ladder shape depends
    /// on the configured VC counts).
    fn dependency_decl(&self, cfg: &SimConfig) -> MechanismDeps;
}

/// The ladder geometry shared by every declaration: which VC indexes the
/// position-indexed ladder of `common::VcLadder` can produce under `cfg`.
struct LadderShape {
    /// Source-group local VCs: `0..budget`.
    budget: u8,
    /// Intermediate-group local VC.
    mid_l: u8,
    /// Destination-group local VC.
    dst_l: u8,
    /// Source-position global VC (always 0).
    src_g: u8,
    /// Intermediate-position global VC.
    mid_g: u8,
    vl: u8,
    vg: u8,
}

impl LadderShape {
    fn new(cfg: &SimConfig) -> Self {
        let vl = cfg.vcs_local.max(1);
        let vg = cfg.vcs_global.max(1);
        let budget = vl.saturating_sub(2).max(1);
        Self {
            budget: budget as u8,
            mid_l: budget.min(vl - 1) as u8,
            dst_l: (vl - 1) as u8,
            src_g: 0,
            mid_g: 1.min(vg - 1) as u8,
            vl: vl as u8,
            vg: vg as u8,
        }
    }
}

/// Deduplicating edge collector.
struct EdgeSet {
    edges: Vec<ClassEdge>,
}

impl EdgeSet {
    fn new() -> Self {
        Self { edges: Vec::new() }
    }

    fn add(&mut self, from: ClassId, to: ClassId, why: EdgeWhy) {
        // First `why` wins: report the most specific reason recorded.
        if !self.edges.iter().any(|e| e.from == from && e.to == to) {
            self.edges.push(ClassEdge { from, to, why });
        }
    }
}

/// Injection edges shared by every mechanism: the first hop can be a
/// source-group local hop, the source global hop, or (intra-group
/// traffic) the destination local hop.
fn inject_edges(lad: &LadderShape, cfg: &SimConfig, out: &mut EdgeSet) {
    for vc in 0..cfg.vcs_injection as u8 {
        let from = ClassId::Inject { vc };
        out.add(from, ClassId::Local { vc: 0 }, EdgeWhy::Inject);
        out.add(from, ClassId::Local { vc: lad.dst_l }, EdgeWhy::Inject);
        out.add(from, ClassId::Global { vc: lad.src_g }, EdgeWhy::Inject);
    }
}

/// MIN: `l₁ g l₃` on the ascending ladder — acyclic by construction.
fn min_edges(cfg: &SimConfig, out: &mut EdgeSet) {
    let lad = LadderShape::new(cfg);
    inject_edges(&lad, cfg, out);
    out.add(
        ClassId::Local { vc: 0 },
        ClassId::Global { vc: lad.src_g },
        EdgeWhy::Minimal,
    );
    out.add(
        ClassId::Global { vc: lad.src_g },
        ClassId::Local { vc: lad.dst_l },
        EdgeWhy::Minimal,
    );
}

/// VAL: `l₁ g₁ l₂ g₂ l₃` through a random intermediate group, with the
/// index-skipping shortcuts (a packet landing at the intermediate
/// group's exit router goes `g₁ → g₂` directly).
fn val_edges(cfg: &SimConfig, out: &mut EdgeSet) {
    let lad = LadderShape::new(cfg);
    inject_edges(&lad, cfg, out);
    let (l1, g1) = (ClassId::Local { vc: 0 }, ClassId::Global { vc: lad.src_g });
    let (l2, g2) = (
        ClassId::Local { vc: lad.mid_l },
        ClassId::Global { vc: lad.mid_g },
    );
    let l3 = ClassId::Local { vc: lad.dst_l };
    out.add(l1, g1, EdgeWhy::Minimal);
    out.add(g1, l2, EdgeWhy::Minimal);
    out.add(l2, g2, EdgeWhy::Minimal);
    out.add(g1, g2, EdgeWhy::Minimal); // skipped l₂
    out.add(g2, l3, EdgeWhy::Minimal);
}

/// PB commits to MIN or VAL at injection, so its dependency set is the
/// union of both path shapes.
fn pb_edges(cfg: &SimConfig, out: &mut EdgeSet) {
    min_edges(cfg, out);
    val_edges(cfg, out);
}

/// PAR re-evaluates a provisional minimal decision at the global-link
/// host router and may divert onto a Valiant path, spending a *second*
/// source-group local hop. The 4th local VC keeps that second hop
/// ascending: `l₁ l₁' g₁ l₂ g₂ l₃`.
fn par_edges(cfg: &SimConfig, out: &mut EdgeSet) {
    pb_edges(cfg, out);
    let lad = LadderShape::new(cfg);
    // ascending source-group chain: hop i uses min(i, budget-1)
    for i in 0..lad.budget {
        let next = (i + 1).min(lad.budget - 1);
        if next > i {
            out.add(
                ClassId::Local { vc: i },
                ClassId::Local { vc: next },
                EdgeWhy::MisrouteLocal,
            );
        }
        out.add(
            ClassId::Local { vc: i },
            ClassId::Global { vc: lad.src_g },
            EdgeWhy::Minimal,
        );
    }
}

/// OFAR (§IV): fully adaptive in-transit misrouting over the canonical
/// VCs, with the escape ring as the deadlock-free drain. The canonical
/// subgraph is declared near-complete over the ladder-reachable classes
/// (local misroutes repeat a class — self-dependencies — and ring exits
/// can land a packet in *any* canonical VC), so the verifier must find a
/// declared escape entry on every class that ends up in a cycle.
fn ofar_edges(cfg: &SimConfig, local_misroute: bool, out: &mut EdgeSet) {
    let lad = LadderShape::new(cfg);
    inject_edges(&lad, cfg, out);

    // Ladder-produced target classes: where a routing decision can send
    // a packet next, whatever channel it currently occupies.
    let mut local_targets: Vec<u8> = (0..lad.budget).collect();
    for vc in [lad.mid_l, lad.dst_l] {
        if !local_targets.contains(&vc) {
            local_targets.push(vc);
        }
    }
    let mut global_targets: Vec<u8> = vec![lad.src_g];
    if !global_targets.contains(&lad.mid_g) {
        global_targets.push(lad.mid_g);
    }

    // Ring exits can land a packet on any canonical VC with credits
    // (`exit_vc` falls back to the fullest-credit VC), so *every*
    // canonical class is a possible dependency source.
    let mut sources: Vec<ClassId> = Vec::new();
    for vc in 0..lad.vl {
        sources.push(ClassId::Local { vc });
    }
    for vc in 0..lad.vg {
        sources.push(ClassId::Global { vc });
    }

    for &from in &sources {
        for &vc in &local_targets {
            let why = if local_misroute {
                EdgeWhy::MisrouteLocal
            } else {
                EdgeWhy::Minimal
            };
            out.add(from, ClassId::Local { vc }, why);
        }
        for &vc in &global_targets {
            out.add(from, ClassId::Global { vc }, EdgeWhy::MisrouteGlobal);
        }
        // Any blocked head past the patience threshold enters the ring.
        out.add(from, ClassId::Escape, EdgeWhy::RingEnter);
    }
    // Injection-queue heads enter the ring under starvation too.
    for vc in 0..cfg.vcs_injection as u8 {
        out.add(ClassId::Inject { vc }, ClassId::Escape, EdgeWhy::RingEnter);
    }
    // On the ring: advance (same ring — the verifier expands this per
    // ring) or exit into any canonical VC.
    out.add(ClassId::Escape, ClassId::Escape, EdgeWhy::RingAdvance);
    for &from in &sources {
        out.add(ClassId::Escape, from, EdgeWhy::RingExit);
    }
}

impl DependencyDecl for MechanismKind {
    fn dependency_decl(&self, cfg: &SimConfig) -> MechanismDeps {
        let mut es = EdgeSet::new();
        let uses_escape = match self {
            MechanismKind::Min => {
                min_edges(cfg, &mut es);
                false
            }
            MechanismKind::Valiant => {
                val_edges(cfg, &mut es);
                false
            }
            MechanismKind::Pb => {
                pb_edges(cfg, &mut es);
                false
            }
            MechanismKind::Par => {
                par_edges(cfg, &mut es);
                false
            }
            MechanismKind::Ofar => {
                ofar_edges(cfg, true, &mut es);
                true
            }
            MechanismKind::OfarL => {
                ofar_edges(cfg, false, &mut es);
                true
            }
        };
        MechanismDeps {
            mechanism: self.name(),
            uses_escape,
            edges: es.edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> SimConfig {
        SimConfig::paper(4)
    }

    /// Rank in the `l₁… < g₁ < l₂ < g₂ < l₃` total order of the ladder
    /// under `cfg`; `None` for classes outside it.
    fn rank(c: ClassId, cfg: &SimConfig) -> Option<u32> {
        let lad = LadderShape::new(cfg);
        let budget = u32::from(lad.budget);
        match c {
            ClassId::Local { vc } if vc < lad.budget => Some(u32::from(vc)),
            ClassId::Local { vc } if vc == lad.mid_l => Some(budget + 1),
            ClassId::Local { vc } if vc == lad.dst_l => Some(budget + 3),
            ClassId::Global { vc } if vc == lad.src_g => Some(budget),
            ClassId::Global { vc } if vc == lad.mid_g => Some(budget + 2),
            _ => None,
        }
    }

    #[test]
    fn ladder_mechanisms_declare_strictly_ascending_edges() {
        let par_cfg = MechanismKind::Par.adapt_config(paper());
        for (kind, cfg) in [
            (MechanismKind::Min, paper()),
            (MechanismKind::Valiant, paper()),
            (MechanismKind::Pb, paper()),
            (MechanismKind::Par, par_cfg),
        ] {
            let deps = kind.dependency_decl(&cfg);
            assert!(!deps.uses_escape);
            for e in &deps.edges {
                if let ClassId::Inject { .. } = e.from {
                    continue;
                }
                let (a, b) = (rank(e.from, &cfg).unwrap(), rank(e.to, &cfg).unwrap());
                assert!(
                    a < b,
                    "{}: {} → {} not ascending",
                    deps.mechanism,
                    e.from,
                    e.to
                );
            }
        }
    }

    #[test]
    fn ofar_declares_escape_entry_on_every_canonical_class() {
        let cfg = MechanismKind::Ofar.adapt_config(paper());
        for kind in [MechanismKind::Ofar, MechanismKind::OfarL] {
            let deps = kind.dependency_decl(&cfg);
            assert!(deps.uses_escape);
            for vc in 0..cfg.vcs_local as u8 {
                assert!(deps.drains_to_escape(ClassId::Local { vc }), "local v{vc}");
            }
            for vc in 0..cfg.vcs_global as u8 {
                assert!(
                    deps.drains_to_escape(ClassId::Global { vc }),
                    "global v{vc}"
                );
            }
            // and the ring can always be exited
            assert!(deps.from(ClassId::Escape).any(|e| e.to != ClassId::Escape));
        }
    }

    #[test]
    fn reduced_vc_ladder_collapses_to_a_cycle_for_valiant() {
        // Fig. 9's 2-local/1-global ladder folds g₁ and g₂ onto VC 0:
        // the VAL declaration then contains g0 → l1 → g0 — exactly the
        // cycle the static verifier must refuse without an escape ring.
        let cfg = SimConfig::reduced_vcs(2);
        let deps = MechanismKind::Valiant.dependency_decl(&cfg);
        let g0 = ClassId::Global { vc: 0 };
        let l1 = ClassId::Local { vc: 1 };
        assert!(deps.edges.iter().any(|e| e.from == g0 && e.to == l1));
        assert!(deps.edges.iter().any(|e| e.from == l1 && e.to == g0));
    }

    #[test]
    fn declarations_are_deduplicated() {
        for kind in MechanismKind::paper_set() {
            let cfg = kind.adapt_config(paper());
            let deps = kind.dependency_decl(&cfg);
            for (i, a) in deps.edges.iter().enumerate() {
                for b in &deps.edges[i + 1..] {
                    assert!(
                        !(a.from == b.from && a.to == b.to),
                        "{}: duplicate {} → {}",
                        deps.mechanism,
                        a.from,
                        a.to
                    );
                }
            }
        }
    }
}
