//! PB: Piggybacking — indirect adaptive routing with broadcast congestion
//! state (Jiang, Kim & Dally, ISCA 2009; §II and §V of the OFAR paper).
//!
//! Each router tracks the occupancy of the global channels it hosts and
//! *piggybacks* (broadcasts) a per-channel saturation flag to the rest of
//! its group. At injection, the source router compares the minimal path's
//! global channel against the global channel of one random Valiant
//! alternative, using the (stale) broadcast state, and commits the packet
//! to one of the two paths. The decision is **final at injection time** —
//! the very limitation OFAR removes (§IV).
//!
//! The broadcast is modeled as a periodic snapshot: every
//! [`PbConfig::update_period`] cycles each router's global-channel
//! occupancies become visible to its whole group, giving the information
//! staleness the paper attributes PB's slower transient response to.
//!
//! The paper tuned PB's threshold empirically and did not publish it; we
//! do the same (see the `ablation_pb` bench binary) and default to the
//! best value found there.

use crate::common::{hop_to_request, injection_vc, live_minimal_hop, VcLadder};
use crate::probe::ProbeState;
use crate::state::RngLanes;
use crate::valiant::ValiantPolicy;
use ofar_engine::{
    InputCtx, NetSnapshot, Packet, Policy, Request, RequestKind, RouterView, SimConfig,
};
use ofar_topology::{Dragonfly, GroupId, RouterId};

/// Tunables of the PB mechanism.
#[derive(Clone, Copy, Debug)]
pub struct PbConfig {
    /// A global channel is flagged saturated when its credit-estimated
    /// occupancy exceeds this fraction.
    pub saturation_threshold: f64,
    /// Cycles between congestion broadcasts within a group.
    pub update_period: u64,
}

impl Default for PbConfig {
    fn default() -> Self {
        Self {
            // Empirically tuned, like the paper ("a similar study was
            // performed for the threshold values in PB", §V): the
            // `ablation_pb` bench sweeps threshold × period; 0.4 gives
            // PB its best adversarial throughput without hurting
            // uniform latency. See EXPERIMENTS.md.
            saturation_threshold: 0.4,
            update_period: 10,
        }
    }
}

/// Piggybacking adaptive routing.
#[derive(Clone, Debug)]
pub struct PbPolicy {
    ladder: VcLadder, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    vcs_injection: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    groups: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    h: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    pb: PbConfig,
    /// Broadcast-visible occupancy of every global channel, indexed by
    /// `router · h + k`. Stale by up to `update_period` cycles.
    visible: Vec<f32>,
    lanes: RngLanes,
    probe: ProbeState, // lint:allow(S001, probe telemetry; diagnostic counters deliberately reset on restore)
}

impl PbPolicy {
    /// Build for a simulator configuration with default PB tunables.
    pub fn new(cfg: &SimConfig, seed: u64) -> Self {
        Self::with_config(cfg, seed, PbConfig::default())
    }

    /// Build with explicit PB tunables (threshold ablation).
    pub fn with_config(cfg: &SimConfig, seed: u64, pb: PbConfig) -> Self {
        Self {
            ladder: VcLadder::new(cfg.vcs_local, cfg.vcs_global),
            vcs_injection: cfg.vcs_injection,
            groups: cfg.params.groups(),
            h: cfg.params.h,
            pb,
            visible: vec![0.0; cfg.params.routers() * cfg.params.h],
            // "PB": one Valiant-candidate stream per injecting node.
            lanes: RngLanes::new(seed ^ 0x5042, cfg.params.routers(), cfg.params.nodes()),
            probe: ProbeState::default(),
        }
    }

    /// Broadcast-visible occupancy of the global channel leaving `from`
    /// towards `to` (both groups, `from != to`).
    fn channel_occupancy(&self, topo: &Dragonfly, from: GroupId, to: GroupId) -> f64 {
        let (router, k) = topo.global_link_from(from, to);
        f64::from(self.visible[router.idx() * self.h + k])
    }

    /// Whether the channel `from → to` is flagged saturated.
    fn saturated(&self, topo: &Dragonfly, from: GroupId, to: GroupId) -> bool {
        self.channel_occupancy(topo, from, to) > self.pb.saturation_threshold
    }
}

impl Policy for PbPolicy {
    fn name(&self) -> &'static str {
        "PB"
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        _input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        if let Some(hop) = live_minimal_hop(view, pkt) {
            return Some(hop_to_request(
                view,
                pkt,
                hop,
                &self.ladder,
                RequestKind::Minimal,
            ));
        }
        // The committed path died under the packet. PB's decision is
        // final at injection, but a dead Valiant leg would strand the
        // packet forever — fall back to the destination path, like VAL.
        if pkt.intermediate.take().is_some() {
            if let Some(hop) = live_minimal_hop(view, pkt) {
                return Some(hop_to_request(
                    view,
                    pkt,
                    hop,
                    &self.ladder,
                    RequestKind::Minimal,
                ));
            }
        }
        None
    }

    fn on_inject(&mut self, view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        let topo = view.fab.topo();
        let src_group = topo.group_of_node(pkt.src);
        let dst_group = topo.group_of_node(pkt.dst);
        if src_group != dst_group && pkt.intermediate.is_none() {
            // Candidate Valiant path through one random intermediate.
            let Self {
                probe,
                lanes,
                groups,
                ..
            } = self;
            let rng = lanes.node(pkt.src.idx());
            let inter = probe.intermediate_or(|| {
                ValiantPolicy::pick_intermediate(rng, *groups, src_group, dst_group)
            });
            // Decision from (possibly stale) broadcast flags: misroute
            // only when the minimal channel is saturated and the Valiant
            // channel is not. A live refinement applies when the minimal
            // channel is hosted by the injection router itself — exactly
            // what a real router knows first-hand.
            let (min_router, min_k) = topo.global_link_from(src_group, dst_group);
            let min_sat = if min_router == view.router {
                let port = view.fab.global_out(min_k);
                let occ: f64 = (0..view.fab.cfg().vcs_global)
                    .map(|vc| view.occupancy(port, vc))
                    .sum::<f64>()
                    / view.fab.cfg().vcs_global as f64;
                occ > self.pb.saturation_threshold
            } else {
                self.saturated(topo, src_group, dst_group)
            };
            if min_sat && !self.saturated(topo, src_group, inter) {
                pkt.intermediate = Some(inter);
            }
        }
        injection_vc(self.vcs_injection, pkt)
    }

    fn end_cycle(&mut self, net: &NetSnapshot<'_>) {
        if !net.now.is_multiple_of(self.pb.update_period) {
            return;
        }
        for r in 0..self.visible.len() / self.h {
            for k in 0..self.h {
                self.visible[r * self.h + k] =
                    net.global_out_occupancy(RouterId::from(r), k) as f32;
            }
        }
    }
}

crate::probe::impl_enumerable_via_probe!(PbPolicy);

impl PbPolicy {
    /// Checkpoint hook: PB carries real cross-cycle state — the
    /// broadcast-visible occupancy table updated every cycle by
    /// `end_cycle` — plus its tie-break lane table. Both must round-trip
    /// for a restored run to take bit-identical decisions.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        self.lanes.save(out);
        out.extend_from_slice(&(self.visible.len() as u32).to_le_bytes());
        for &v in &self.visible {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Restore the state captured by [`PbPolicy::save_state`]. Fails
    /// closed: `self` is untouched unless the whole frame decodes.
    pub(crate) fn load_state(&mut self, data: &[u8]) -> Result<(), String> {
        let mut lanes = self.lanes.clone();
        let rest = lanes.take_lanes(data, "PB")?;
        if rest.len() < 4 {
            return Err("PB: truncated visibility table header".into());
        }
        let (head, body) = rest.split_at(4);
        let n = u32::from_le_bytes(head.try_into().unwrap()) as usize;
        if n != self.visible.len() {
            return Err(format!(
                "PB: visibility table has {n} entries, this network needs {}",
                self.visible.len()
            ));
        }
        if body.len() != n * 4 {
            return Err(format!(
                "PB: visibility table body is {} bytes, expected {}",
                body.len(),
                n * 4
            ));
        }
        let mut visible = Vec::with_capacity(n);
        for chunk in body.chunks_exact(4) {
            visible.push(f32::from_bits(u32::from_le_bytes(
                chunk.try_into().unwrap(),
            )));
        }
        self.lanes = lanes;
        self.visible = visible;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_engine::Network;
    use ofar_topology::NodeId;

    #[test]
    fn pb_routes_minimally_when_uncongested() {
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, PbPolicy::new(&cfg, 3));
        let last = NodeId::from(net.num_nodes() - 1);
        net.generate(NodeId::new(0), last);
        net.run(500);
        assert_eq!(net.stats().delivered_packets, 1);
        assert!(net.stats().hop_sum <= 3, "uncongested PB must go minimal");
    }

    #[test]
    fn pb_diverts_under_adversarial_pressure() {
        // The full ADV+1 pattern (every group sends to the next): each
        // group's single minimal global channel saturates — and, because
        // every destination-group entry router is also contended by the
        // other flows, the backlog becomes visible in the channel
        // occupancy PB broadcasts. PB must start choosing Valiant paths.
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, PbPolicy::new(&cfg, 3));
        let per_group = cfg.params.a * cfg.params.p;
        let groups = cfg.params.groups();
        let nodes = net.num_nodes();
        for cycle in 0..6000u64 {
            if cycle % 8 == 0 {
                for n in 0..nodes {
                    let g = n / per_group;
                    let dst = ((g + 1) % groups) * per_group + (n + cycle as usize) % per_group;
                    net.generate(NodeId::from(n), NodeId::from(dst));
                }
            }
            net.step();
        }
        // some deliveries took more than 3 hops → Valiant paths used
        let s = net.stats();
        assert!(s.delivered_packets > 1000);
        assert!(
            s.avg_hops() > 3.01,
            "PB never diverted (avg hops {})",
            s.avg_hops()
        );
    }
}
