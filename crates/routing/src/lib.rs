//! # ofar-routing
//!
//! The routing mechanisms of the OFAR paper (García et al., ICPP 2012)
//! as [`ofar_engine::Policy`] implementations:
//!
//! * [`MinPolicy`] — deterministic minimal routing (MIN);
//! * [`ValiantPolicy`] — Valiant randomized routing (VAL);
//! * [`PbPolicy`] — Piggybacking indirect adaptive routing (PB);
//! * [`ParPolicy`] — Progressive Adaptive Routing (PAR, extension);
//! * [`OfarPolicy`] — **On-the-Fly Adaptive Routing** (OFAR), with the
//!   `OFAR-L` dissection variant (no local misrouting).
//!
//! [`MechanismKind`] / [`Mechanism`] wrap the family behind one enum for
//! sweep harnesses.
//!
//! [`deps`] exports each mechanism's channel-dependency declaration
//! ([`DependencyDecl`]) for the static deadlock verifier (`ofar-verify`).

#![warn(missing_docs)]

pub mod common;
pub mod deps;
pub mod mechanism;
pub mod minimal;
pub mod ofar;
pub mod par;
pub mod pb;
pub mod probe;
pub(crate) mod state;
pub mod valiant;

pub use common::VcLadder;
pub use deps::{ClassEdge, ClassId, DependencyDecl, EdgeWhy, MechanismDeps};
pub use mechanism::{Mechanism, MechanismKind};
pub use minimal::MinPolicy;
pub use ofar::{
    MisrouteThreshold, OfarConfig, OfarPolicy, RingGuard, RING_GUARD_DEFAULT, RING_GUARD_GRACE,
};
pub use par::{par_config, ParConfig, ParPolicy};
pub use pb::{PbConfig, PbPolicy};
pub use probe::{EnumerablePolicy, ProbeFeedback, ProbePin};
pub use valiant::ValiantPolicy;
