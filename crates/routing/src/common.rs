//! Helpers shared by every routing mechanism: minimal-path requests and
//! the position-indexed virtual-channel ladder.

use ofar_engine::{Packet, Request, RequestKind, RouterView};
use ofar_topology::MinimalHop;

/// Where the current router sits along the packet's journey. Destination
/// takes precedence (intra-group traffic counts as being at the
/// destination).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GroupPos {
    /// The packet is in its source group.
    Source,
    /// The packet is in an intermediate (Valiant or misrouted-into)
    /// group.
    Intermediate,
    /// The packet is in its destination group.
    Destination,
}

/// Classify the current router for `pkt`.
pub fn group_pos(view: &RouterView<'_>, pkt: &Packet) -> GroupPos {
    let topo = view.fab.topo();
    let here = view.group();
    if here == topo.group_of_node(pkt.dst) {
        GroupPos::Destination
    } else if here == topo.group_of_node(pkt.src) {
        GroupPos::Source
    } else {
        GroupPos::Intermediate
    }
}

/// Position-indexed VC assignment (§I of the paper).
///
/// Local links are visited on odd hops of the canonical
/// `l₁ g₁ l₂ g₂ l₃` Valiant template and global links on even hops, so
/// 3 local + 2 global VCs suffice; shorter paths "skip indexes
/// corresponding to missing hops". Assigning by *position* (which group
/// the packet is in) rather than by hop count realizes exactly that
/// skipping: a packet injected at its group's exit router still uses the
/// intermediate-group VC for `l₂`, keeping the ladder ascending along
/// every possible path and the channel-dependency graph acyclic:
///
/// `l(src, 0) → g(src, 0) → l(inter, 1) → g(inter, 1) → l(dst, last)`.
///
/// The source group gets `vcs_local − 2` local VCs (normally one; PAR's
/// fourth VC makes it two so its second source-group hop stays ordered),
/// the intermediate group the next one, and the destination group the
/// last one.
///
/// OFAR does not rely on VC order for deadlock freedom (the escape ring
/// does that) and uses the same mapping purely to reduce head-of-line
/// blocking.
#[derive(Clone, Copy, Debug)]
pub struct VcLadder {
    /// VCs available on local links.
    pub vcs_local: usize,
    /// VCs available on global links.
    pub vcs_global: usize,
}

impl VcLadder {
    /// Build for the configured VC counts.
    pub fn new(vcs_local: usize, vcs_global: usize) -> Self {
        assert!(vcs_local >= 1 && vcs_global >= 1);
        Self {
            vcs_local,
            vcs_global,
        }
    }

    /// Local VCs reserved for source-group hops.
    #[inline]
    fn source_budget(&self) -> usize {
        self.vcs_local.saturating_sub(2).max(1)
    }

    /// VC for the next *local* hop of `pkt` at group position `pos`.
    pub fn local_vc(&self, pkt: &Packet, pos: GroupPos) -> usize {
        let budget = self.source_budget();
        match pos {
            GroupPos::Source => (pkt.local_hops as usize).min(budget - 1),
            GroupPos::Intermediate => budget.min(self.vcs_local - 1),
            GroupPos::Destination => self.vcs_local - 1,
        }
    }

    /// VC for the next *global* hop of `pkt` at group position `pos`.
    pub fn global_vc(&self, pos: GroupPos) -> usize {
        match pos {
            GroupPos::Source => 0,
            _ => 1.min(self.vcs_global - 1),
        }
    }
}

/// The minimal next hop of `pkt` from the router of `view`, honoring a
/// pending Valiant intermediate group if the packet carries one.
pub fn current_minimal_hop(view: &RouterView<'_>, pkt: &Packet) -> MinimalHop {
    let topo = view.fab.topo();
    if let Some(inter) = pkt.intermediate {
        if let Some(hop) = topo.hop_toward_group(view.router, inter) {
            return hop;
        }
        // Arrival bookkeeping clears reached intermediates; fall through
        // to the destination route defensively.
    }
    topo.minimal_hop_to_node(view.router, pkt.dst)
}

/// The minimal next hop over *surviving* links only: equals
/// [`current_minimal_hop`] on a healthy network (zero-cost fast path),
/// detours dead local links within their group, and returns `None` when
/// the minimal direction is severed — its one global link is down, or
/// the destination is unreachable. Mechanisms decide what to do with
/// `None`: adaptive ones divert through another group, oblivious ones
/// wait (and the run watchdog reports the partition).
pub fn live_minimal_hop(view: &RouterView<'_>, pkt: &Packet) -> Option<MinimalHop> {
    if !view.faults().any() {
        return Some(current_minimal_hop(view, pkt));
    }
    let topo = view.fab.topo();
    let faults = view.faults();
    let dead = |a: ofar_topology::RouterId, b: ofar_topology::RouterId| !faults.topo_link_up(a, b);
    if let Some(inter) = pkt.intermediate {
        if view.group() != inter {
            return topo.hop_toward_group_avoiding(view.router, inter, &dead);
        }
    }
    topo.minimal_hop_to_node_avoiding(view.router, pkt.dst, &dead)
}

/// Translate a [`MinimalHop`] into a concrete allocator request, using
/// `ladder` for the VC choice.
pub fn hop_to_request(
    view: &RouterView<'_>,
    pkt: &Packet,
    hop: MinimalHop,
    ladder: &VcLadder,
    kind: RequestKind,
) -> Request {
    let fab = view.fab;
    match hop {
        MinimalHop::Eject { node } => Request::new(fab.eject_out(node), 0, RequestKind::Eject),
        MinimalHop::Local { port } => {
            let pos = group_pos(view, pkt);
            Request::new(fab.local_out(port), ladder.local_vc(pkt, pos), kind)
        }
        MinimalHop::Global { port } => {
            let pos = group_pos(view, pkt);
            Request::new(fab.global_out(port), ladder.global_vc(pos), kind)
        }
    }
}

/// The minimal request of `pkt` at this router (kind
/// [`RequestKind::Minimal`] or [`RequestKind::Eject`]).
pub fn minimal_request(view: &RouterView<'_>, pkt: &Packet, ladder: &VcLadder) -> Request {
    let hop = current_minimal_hop(view, pkt);
    hop_to_request(view, pkt, hop, ladder, RequestKind::Minimal)
}

/// Injection-VC choice shared by all mechanisms: spread packets over the
/// injection VCs round-robin by id, purely to reduce head-of-line
/// blocking at the source.
pub fn injection_vc(vcs_injection: usize, pkt: &Packet) -> usize {
    (pkt.id % vcs_injection as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pkt(local_hops: u8, global_hops: u8) -> Packet {
        Packet {
            id: 0,
            injected_at: 0,
            src: ofar_topology::NodeId::new(0),
            dst: ofar_topology::NodeId::new(1),
            intermediate: None,
            flags: 0,
            ring_exits_left: 0,
            local_hops,
            global_hops,
            ring_hops: 0,
            wait: 0,
            cur_group: ofar_topology::GroupId::new(0),
        }
    }

    #[test]
    fn ladder_matches_paper_vc_plan() {
        let l = VcLadder::new(3, 2);
        // l1 (source) → 0, l2 (intermediate) → 1, l3 (dest) → 2
        assert_eq!(l.local_vc(&pkt(0, 0), GroupPos::Source), 0);
        assert_eq!(l.local_vc(&pkt(0, 1), GroupPos::Intermediate), 1);
        assert_eq!(l.local_vc(&pkt(1, 2), GroupPos::Destination), 2);
        // index skipping: a packet injected at the exit router (no l1)
        // still gets VC 1 in the intermediate group and VC 2 at the
        // destination — position decides, not hop count.
        assert_eq!(l.local_vc(&pkt(0, 1), GroupPos::Intermediate), 1);
        assert_eq!(l.local_vc(&pkt(0, 1), GroupPos::Destination), 2);
        // g1 → 0, g2 → 1
        assert_eq!(l.global_vc(GroupPos::Source), 0);
        assert_eq!(l.global_vc(GroupPos::Intermediate), 1);
    }

    #[test]
    fn ladder_is_strictly_ascending_along_any_path() {
        // Deadlock-freedom argument: the (class, vc) pairs in path order
        // must be strictly increasing in the l0 < g0 < l1 < g1 < l2
        // ordering for every mechanism path shape.
        let l = VcLadder::new(3, 2);
        let rank_local = |vc: usize| 2 * vc; // l(vc) ranks 0, 2, 4
        let rank_global = |vc: usize| 2 * vc + 1; // g(vc) ranks 1, 3
                                                  // Valiant l-g-l-g-l
        let path = [
            rank_local(l.local_vc(&pkt(0, 0), GroupPos::Source)),
            rank_global(l.global_vc(GroupPos::Source)),
            rank_local(l.local_vc(&pkt(1, 1), GroupPos::Intermediate)),
            rank_global(l.global_vc(GroupPos::Intermediate)),
            rank_local(l.local_vc(&pkt(2, 2), GroupPos::Destination)),
        ];
        assert!(path.windows(2).all(|w| w[0] < w[1]), "VAL path {path:?}");
        // minimal l-g-l (skipping the intermediate indexes)
        let min_path = [
            rank_local(l.local_vc(&pkt(0, 0), GroupPos::Source)),
            rank_global(l.global_vc(GroupPos::Source)),
            rank_local(l.local_vc(&pkt(1, 1), GroupPos::Destination)),
        ];
        assert!(min_path.windows(2).all(|w| w[0] < w[1]));
        // Valiant with skipped l1: g-l-g-l
        let skip = [
            rank_global(l.global_vc(GroupPos::Source)),
            rank_local(l.local_vc(&pkt(0, 1), GroupPos::Intermediate)),
            rank_global(l.global_vc(GroupPos::Intermediate)),
            rank_local(l.local_vc(&pkt(1, 2), GroupPos::Destination)),
        ];
        assert!(skip.windows(2).all(|w| w[0] < w[1]), "skip path {skip:?}");
    }

    #[test]
    fn par_ladder_orders_two_source_hops() {
        let l = VcLadder::new(4, 2);
        assert_eq!(l.local_vc(&pkt(0, 0), GroupPos::Source), 0);
        assert_eq!(l.local_vc(&pkt(1, 0), GroupPos::Source), 1);
        assert_eq!(l.local_vc(&pkt(2, 1), GroupPos::Intermediate), 2);
        assert_eq!(l.local_vc(&pkt(3, 2), GroupPos::Destination), 3);
    }

    #[test]
    fn reduced_vc_ladders_stay_in_range() {
        // Fig. 9 config: 2 local, 1 global VCs.
        let l = VcLadder::new(2, 1);
        for pos in [
            GroupPos::Source,
            GroupPos::Intermediate,
            GroupPos::Destination,
        ] {
            for lh in 0..8 {
                assert!(l.local_vc(&pkt(lh, 0), pos) < 2);
            }
            assert_eq!(l.global_vc(pos), 0);
        }
        let single = VcLadder::new(1, 1);
        for pos in [
            GroupPos::Source,
            GroupPos::Intermediate,
            GroupPos::Destination,
        ] {
            assert_eq!(single.local_vc(&pkt(3, 0), pos), 0);
        }
    }

    #[test]
    fn injection_vc_spreads() {
        let mut p = pkt(0, 0);
        let mut seen = [false; 3];
        for id in 0..9 {
            p.id = id;
            seen[injection_vc(3, &p)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
