//! Little-endian helpers for the mechanisms' checkpoint state
//! ([`ofar_engine::Policy::save_state`] / `load_state`).
//!
//! The engine owns framing and checksums; a mechanism only appends its
//! raw dynamic state — typically one xoshiro256** stream, plus for PB
//! the broadcast-visible occupancy table. Decoding fails closed with a
//! descriptive `Err` on any length or layout mismatch.

use rand::rngs::SmallRng;

/// Append one RNG's 256-bit state.
pub(crate) fn put_rng(out: &mut Vec<u8>, rng: &SmallRng) {
    for word in rng.state() {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

/// Read one RNG state from the front of `data`, returning the rest.
pub(crate) fn take_rng<'a>(data: &'a [u8], who: &str) -> Result<(SmallRng, &'a [u8]), String> {
    if data.len() < 32 {
        return Err(format!("{who}: truncated RNG state ({} bytes)", data.len()));
    }
    let (raw, rest) = data.split_at(32);
    let mut s = [0u64; 4];
    for (i, word) in s.iter_mut().enumerate() {
        *word = u64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().unwrap());
    }
    Ok((SmallRng::from_state(s), rest))
}

/// The whole state is one RNG: decode it and require nothing follows.
pub(crate) fn rng_only(data: &[u8], who: &str) -> Result<SmallRng, String> {
    let (rng, rest) = take_rng(data, who)?;
    if !rest.is_empty() {
        return Err(format!("{who}: {} trailing bytes of state", rest.len()));
    }
    Ok(rng)
}
