//! Little-endian helpers for the mechanisms' checkpoint state
//! ([`ofar_engine::Policy::save_state`] / `load_state`).
//!
//! The engine owns framing and checksums; a mechanism only appends its
//! raw dynamic state — typically one xoshiro256** stream, plus for PB
//! the broadcast-visible occupancy table. Decoding fails closed with a
//! descriptive `Err` on any length or layout mismatch.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Per-shard RNG lanes for the parallel phases: one independent
/// xoshiro256** stream per shard, router lanes first (`0..routers`),
/// node lanes after (`routers..routers + nodes`).
///
/// A randomized decision made during a `parallel`-marked phase of
/// `Network::step` must draw from the deciding shard's own lane: a
/// single shared stream would advance in shard-iteration order, so every
/// pick would depend on the shard schedule the parallelization contract
/// (`results/phase-contract.json`) declares unobservable — and the
/// `ofar-race` certifier would rightly flag the POLICY section of the
/// snapshot as schedule-divergent. Draws from `route` key by the routing
/// router's index; draws from `inject` key by the injecting node's.
#[derive(Clone, Debug)]
pub(crate) struct RngLanes {
    /// Lane split point between router and node lanes. Config-derived
    /// (topology shape), so the codec carries only the streams.
    routers: usize, // lint:allow(S001, config-derived lane split; rebuilt by the policy constructor and cross-checked against the lane count on restore)
    lanes: Vec<SmallRng>,
}

impl RngLanes {
    /// Derive `routers + nodes` independent streams from one policy
    /// seed. Lane `i` seeds from a golden-ratio stride over the base;
    /// `SmallRng::seed_from_u64` runs its own splitmix expansion on top,
    /// so adjacent lanes decorrelate.
    pub(crate) fn new(base: u64, routers: usize, nodes: usize) -> Self {
        let lanes = (0..routers + nodes)
            .map(|i| {
                SmallRng::seed_from_u64(
                    base.wrapping_add(0x9E37_79B9_7F4A_7C15_u64.wrapping_mul(i as u64 + 1)),
                )
            })
            .collect();
        Self { routers, lanes }
    }

    /// The lane of router shard `r` (draws made from `route`).
    pub(crate) fn router(&mut self, r: usize) -> &mut SmallRng {
        &mut self.lanes[r]
    }

    /// The lane of node shard `n` (draws made from `inject`).
    pub(crate) fn node(&mut self, n: usize) -> &mut SmallRng {
        &mut self.lanes[self.routers + n]
    }

    /// Append the lane table: count header, then each lane's 256-bit
    /// state in lane-index order — byte-identical no matter which shard
    /// schedule produced the draws.
    pub(crate) fn save(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.lanes.len() as u32).to_le_bytes());
        for rng in &self.lanes {
            put_rng(out, rng);
        }
    }

    /// Read a lane table from the front of `data`, returning the rest.
    /// Fails closed (self untouched) when the count disagrees with this
    /// network's shape or the table is truncated.
    pub(crate) fn take_lanes<'a>(&mut self, data: &'a [u8], who: &str) -> Result<&'a [u8], String> {
        if data.len() < 4 {
            return Err(format!("{who}: truncated lane-table header"));
        }
        let (head, body) = data.split_at(4);
        let n = u32::from_le_bytes(head.try_into().unwrap()) as usize;
        if n != self.lanes.len() {
            return Err(format!(
                "{who}: lane table has {n} streams, this network needs {}",
                self.lanes.len()
            ));
        }
        let mut fresh = Vec::with_capacity(n);
        let mut rest = body;
        for _ in 0..n {
            let (rng, r) = take_rng(rest, who)?;
            fresh.push(rng);
            rest = r;
        }
        self.lanes = fresh;
        Ok(rest)
    }

    /// The whole state is one lane table: decode it and require nothing
    /// follows.
    pub(crate) fn load(&mut self, data: &[u8], who: &str) -> Result<(), String> {
        let rest = self.take_lanes(data, who)?;
        if !rest.is_empty() {
            return Err(format!("{who}: {} trailing bytes of state", rest.len()));
        }
        Ok(())
    }
}

/// Append one RNG's 256-bit state.
pub(crate) fn put_rng(out: &mut Vec<u8>, rng: &SmallRng) {
    for word in rng.state() {
        out.extend_from_slice(&word.to_le_bytes());
    }
}

/// Read one RNG state from the front of `data`, returning the rest.
pub(crate) fn take_rng<'a>(data: &'a [u8], who: &str) -> Result<(SmallRng, &'a [u8]), String> {
    if data.len() < 32 {
        return Err(format!("{who}: truncated RNG state ({} bytes)", data.len()));
    }
    let (raw, rest) = data.split_at(32);
    let mut s = [0u64; 4];
    for (i, word) in s.iter_mut().enumerate() {
        *word = u64::from_le_bytes(raw[i * 8..i * 8 + 8].try_into().unwrap());
    }
    Ok((SmallRng::from_state(s), rest))
}
