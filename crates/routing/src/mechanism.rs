//! The mechanism family as one dispatchable type, mirroring the paper's
//! §V list (MIN, VAL, PB, OFAR, OFAR-L) plus the PAR extension.

use crate::minimal::MinPolicy;
use crate::ofar::{OfarConfig, OfarPolicy};
use crate::par::ParPolicy;
use crate::pb::{PbConfig, PbPolicy};
use crate::probe::{EnumerablePolicy, ProbeFeedback, ProbePin};
use crate::valiant::ValiantPolicy;
use ofar_engine::{
    InputCtx, NetSnapshot, Packet, Policy, Request, RingMode, RouterView, SimConfig,
};

/// Which routing mechanism to simulate. `Copy`, hashable and printable —
/// convenient as a sweep axis in the experiment harness.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MechanismKind {
    /// Deterministic minimal routing.
    Min,
    /// Valiant randomized routing.
    Valiant,
    /// Piggybacking (Jiang et al.).
    Pb,
    /// Progressive Adaptive Routing (extension baseline; needs
    /// `vcs_local = 4`).
    Par,
    /// On-the-Fly Adaptive Routing (the paper's contribution).
    Ofar,
    /// OFAR without local misrouting (dissection model).
    OfarL,
}

impl MechanismKind {
    /// Paper name of the mechanism.
    pub fn name(self) -> &'static str {
        match self {
            MechanismKind::Min => "MIN",
            MechanismKind::Valiant => "VAL",
            MechanismKind::Pb => "PB",
            MechanismKind::Par => "PAR",
            MechanismKind::Ofar => "OFAR",
            MechanismKind::OfarL => "OFAR-L",
        }
    }

    /// Inverse of [`MechanismKind::name`] — used to rebuild a mechanism
    /// from a self-describing snapshot file.
    pub fn from_name(name: &str) -> Option<MechanismKind> {
        Some(match name {
            "MIN" => MechanismKind::Min,
            "VAL" => MechanismKind::Valiant,
            "PB" => MechanismKind::Pb,
            "PAR" => MechanismKind::Par,
            "OFAR" => MechanismKind::Ofar,
            "OFAR-L" => MechanismKind::OfarL,
            _ => return None,
        })
    }

    /// Whether the mechanism needs an escape ring to avoid deadlock.
    pub fn needs_ring(self) -> bool {
        matches!(self, MechanismKind::Ofar | MechanismKind::OfarL)
    }

    /// The five mechanisms evaluated in the paper.
    pub fn paper_set() -> [MechanismKind; 5] {
        [
            MechanismKind::Min,
            MechanismKind::Valiant,
            MechanismKind::Pb,
            MechanismKind::Ofar,
            MechanismKind::OfarL,
        ]
    }

    /// Adjust a base configuration to the mechanism's requirements:
    /// OFAR models get an escape ring (embedded unless one is already
    /// chosen), PAR gets its fourth local VC, and VC-ordered mechanisms
    /// drop the ring they do not use.
    pub fn adapt_config(self, mut cfg: SimConfig) -> SimConfig {
        match self {
            MechanismKind::Ofar | MechanismKind::OfarL => {
                if cfg.ring == RingMode::None {
                    cfg.ring = RingMode::Embedded;
                }
            }
            MechanismKind::Par => {
                cfg.vcs_local = cfg.vcs_local.max(4);
                cfg.ring = RingMode::None;
            }
            _ => cfg.ring = RingMode::None,
        }
        cfg
    }

    /// Instantiate the policy for an (already adapted) configuration.
    pub fn build(self, cfg: &SimConfig, seed: u64) -> Mechanism {
        match self {
            MechanismKind::Min => Mechanism::Min(MinPolicy::new(cfg)),
            MechanismKind::Valiant => Mechanism::Valiant(ValiantPolicy::new(cfg, seed)),
            MechanismKind::Pb => Mechanism::Pb(PbPolicy::new(cfg, seed)),
            MechanismKind::Par => Mechanism::Par(ParPolicy::new(cfg, seed)),
            MechanismKind::Ofar => Mechanism::Ofar(OfarPolicy::new(cfg, seed)),
            MechanismKind::OfarL => Mechanism::Ofar(OfarPolicy::without_local(cfg, seed)),
        }
    }

    /// Instantiate with explicit mechanism tunables where they exist.
    pub fn build_tuned(
        self,
        cfg: &SimConfig,
        seed: u64,
        ofar: Option<OfarConfig>,
        pb: Option<PbConfig>,
    ) -> Mechanism {
        match (self, ofar, pb) {
            (MechanismKind::Ofar | MechanismKind::OfarL, Some(mut o), _) => {
                if self == MechanismKind::OfarL {
                    o.local_misroute = false;
                }
                Mechanism::Ofar(OfarPolicy::with_config(cfg, seed, o))
            }
            (MechanismKind::Pb, _, Some(p)) => Mechanism::Pb(PbPolicy::with_config(cfg, seed, p)),
            _ => self.build(cfg, seed),
        }
    }
}

impl std::fmt::Display for MechanismKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A concrete routing mechanism (enum dispatch keeps the engine
/// monomorphic over one type while avoiding trait objects in the hot
/// per-cycle path).
#[derive(Clone, Debug)]
pub enum Mechanism {
    /// Minimal routing.
    Min(MinPolicy),
    /// Valiant routing.
    Valiant(ValiantPolicy),
    /// Piggybacking.
    Pb(PbPolicy),
    /// Progressive Adaptive Routing.
    Par(ParPolicy),
    /// OFAR or OFAR-L.
    Ofar(OfarPolicy),
}

impl Policy for Mechanism {
    fn name(&self) -> &'static str {
        match self {
            Mechanism::Min(p) => p.name(),
            Mechanism::Valiant(p) => p.name(),
            Mechanism::Pb(p) => p.name(),
            Mechanism::Par(p) => p.name(),
            Mechanism::Ofar(p) => p.name(),
        }
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        match self {
            Mechanism::Min(p) => p.route(view, input, pkt),
            Mechanism::Valiant(p) => p.route(view, input, pkt),
            Mechanism::Pb(p) => p.route(view, input, pkt),
            Mechanism::Par(p) => p.route(view, input, pkt),
            Mechanism::Ofar(p) => p.route(view, input, pkt),
        }
    }

    fn on_inject(&mut self, view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        match self {
            Mechanism::Min(p) => p.on_inject(view, pkt),
            Mechanism::Valiant(p) => p.on_inject(view, pkt),
            Mechanism::Pb(p) => p.on_inject(view, pkt),
            Mechanism::Par(p) => p.on_inject(view, pkt),
            Mechanism::Ofar(p) => p.on_inject(view, pkt),
        }
    }

    fn end_cycle(&mut self, net: &NetSnapshot<'_>) {
        if let Mechanism::Pb(p) = self {
            p.end_cycle(net)
        }
    }

    fn needs_ring(&self) -> bool {
        matches!(self, Mechanism::Ofar(_))
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        match self {
            Mechanism::Min(_) => {} // stateless
            Mechanism::Valiant(p) => p.save_state(out),
            Mechanism::Pb(p) => p.save_state(out),
            Mechanism::Par(p) => p.save_state(out),
            Mechanism::Ofar(p) => p.save_state(out),
        }
    }

    fn load_state(&mut self, data: &[u8]) -> Result<(), String> {
        match self {
            Mechanism::Min(_) => {
                if data.is_empty() {
                    Ok(())
                } else {
                    Err(format!("MIN is stateless but got {} bytes", data.len()))
                }
            }
            Mechanism::Valiant(p) => p.load_state(data),
            Mechanism::Pb(p) => p.load_state(data),
            Mechanism::Par(p) => p.load_state(data),
            Mechanism::Ofar(p) => p.load_state(data),
        }
    }
}

impl EnumerablePolicy for Mechanism {
    fn set_probe(&mut self, pin: Option<ProbePin>) {
        match self {
            Mechanism::Min(p) => p.set_probe(pin),
            Mechanism::Valiant(p) => p.set_probe(pin),
            Mechanism::Pb(p) => p.set_probe(pin),
            Mechanism::Par(p) => p.set_probe(pin),
            Mechanism::Ofar(p) => p.set_probe(pin),
        }
    }

    fn probe_feedback(&self) -> ProbeFeedback {
        match self {
            Mechanism::Min(p) => p.probe_feedback(),
            Mechanism::Valiant(p) => p.probe_feedback(),
            Mechanism::Pb(p) => p.probe_feedback(),
            Mechanism::Par(p) => p.probe_feedback(),
            Mechanism::Ofar(p) => p.probe_feedback(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_build_their_named_policies() {
        for kind in [
            MechanismKind::Min,
            MechanismKind::Valiant,
            MechanismKind::Pb,
            MechanismKind::Par,
            MechanismKind::Ofar,
            MechanismKind::OfarL,
        ] {
            let cfg = kind.adapt_config(SimConfig::paper(2));
            let m = kind.build(&cfg, 42);
            assert_eq!(m.name(), kind.name());
            assert_eq!(m.needs_ring(), kind.needs_ring());
        }
    }

    #[test]
    fn adapt_config_sets_ring_and_vcs() {
        let base = SimConfig::paper(2);
        assert_eq!(
            MechanismKind::Ofar.adapt_config(base).ring,
            RingMode::Embedded
        );
        assert_eq!(MechanismKind::Min.adapt_config(base).ring, RingMode::None);
        assert_eq!(MechanismKind::Par.adapt_config(base).vcs_local, 4);
        // explicit physical ring survives adaptation
        let phys = base.with_ring(RingMode::Physical);
        assert_eq!(
            MechanismKind::OfarL.adapt_config(phys).ring,
            RingMode::Physical
        );
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(MechanismKind::OfarL.to_string(), "OFAR-L");
        assert_eq!(MechanismKind::Valiant.to_string(), "VAL");
    }
}
