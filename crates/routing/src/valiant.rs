//! VAL: Valiant randomized routing (§II, §V; Valiant 1982).
//!
//! At injection, each inter-group packet picks a uniformly random
//! intermediate group (different from both source and destination
//! groups), travels minimally to it, then minimally to the destination —
//! the `l₁ g₁ l₂ g₂ l₃` path of §I. Intra-group traffic is routed
//! minimally: sending it through a remote group would burn two global
//! hops for no balancing benefit.
//!
//! VAL balances global links perfectly (throughput ½ under any
//! admissible pattern of *inter-group* demands) but §III shows its blind
//! spot: for ADV+h patterns the `l₂` hop concentrates on single local
//! links, capping throughput at `1/h`.

use crate::common::{hop_to_request, injection_vc, live_minimal_hop, VcLadder};
use crate::probe::ProbeState;
use crate::state::RngLanes;
use ofar_engine::{InputCtx, Packet, Policy, Request, RequestKind, RouterView, SimConfig};
use ofar_topology::GroupId;
use rand::rngs::SmallRng;
use rand::Rng;

/// Valiant routing.
#[derive(Clone, Debug)]
pub struct ValiantPolicy {
    ladder: VcLadder, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    vcs_injection: usize, // lint:allow(S001, config-derived; rebuilt from SimConfig when the policy is constructed)
    groups: usize,
    lanes: RngLanes,
    probe: ProbeState, // lint:allow(S001, probe telemetry; diagnostic counters deliberately reset on restore)
}

impl ValiantPolicy {
    /// Build for a simulator configuration.
    pub fn new(cfg: &SimConfig, seed: u64) -> Self {
        Self {
            ladder: VcLadder::new(cfg.vcs_local, cfg.vcs_global),
            vcs_injection: cfg.vcs_injection,
            groups: cfg.params.groups(),
            // "VAL": one intermediate-pick stream per injecting node, so
            // the draw order is keyed by the node, not the inject-loop
            // schedule.
            lanes: RngLanes::new(seed ^ 0x56414C, cfg.params.routers(), cfg.params.nodes()),
            probe: ProbeState::default(),
        }
    }

    /// Pick a uniform intermediate group different from `src` and `dst`.
    pub(crate) fn pick_intermediate(
        rng: &mut SmallRng,
        groups: usize,
        src: GroupId,
        dst: GroupId,
    ) -> GroupId {
        debug_assert_ne!(src, dst);
        debug_assert!(groups >= 3, "Valiant needs a third group");
        loop {
            let g = GroupId::from(rng.gen_range(0..groups));
            if g != src && g != dst {
                return g;
            }
        }
    }
}

impl Policy for ValiantPolicy {
    fn name(&self) -> &'static str {
        "VAL"
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        _input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        if let Some(hop) = live_minimal_hop(view, pkt) {
            return Some(hop_to_request(
                view,
                pkt,
                hop,
                &self.ladder,
                RequestKind::Minimal,
            ));
        }
        // The leg towards the Valiant intermediate died under the packet:
        // drop the intermediate and head straight for the destination
        // (idempotent bookkeeping — see `Policy::route`). If the
        // destination itself is severed, wait and let the watchdog
        // report the partition.
        if pkt.intermediate.take().is_some() {
            if let Some(hop) = live_minimal_hop(view, pkt) {
                return Some(hop_to_request(
                    view,
                    pkt,
                    hop,
                    &self.ladder,
                    RequestKind::Minimal,
                ));
            }
        }
        None
    }

    fn on_inject(&mut self, view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        let topo = view.fab.topo();
        let src_group = topo.group_of_node(pkt.src);
        let dst_group = topo.group_of_node(pkt.dst);
        if src_group != dst_group && pkt.intermediate.is_none() {
            let Self {
                probe,
                lanes,
                groups,
                ..
            } = self;
            let rng = lanes.node(pkt.src.idx());
            pkt.intermediate =
                Some(probe.intermediate_or(|| {
                    Self::pick_intermediate(rng, *groups, src_group, dst_group)
                }));
        }
        injection_vc(self.vcs_injection, pkt)
    }
}

crate::probe::impl_enumerable_via_probe!(ValiantPolicy);

impl ValiantPolicy {
    /// Checkpoint hook: VAL's only dynamic state is the
    /// intermediate-pick lane table (chosen intermediates ride in the
    /// packet headers themselves).
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        self.lanes.save(out);
    }

    /// Restore the lane table captured by [`ValiantPolicy::save_state`].
    pub(crate) fn load_state(&mut self, data: &[u8]) -> Result<(), String> {
        self.lanes.load(data, "VAL")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ofar_engine::Network;
    use ofar_topology::NodeId;
    use rand::SeedableRng;

    #[test]
    fn valiant_paths_stay_within_five_hops() {
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, ValiantPolicy::new(&cfg, 7));
        let nodes = net.num_nodes();
        for s in 0..20 {
            let d = (s + nodes / 2) % nodes;
            net.generate(NodeId::from(s), NodeId::from(d));
        }
        net.run(3000);
        assert_eq!(net.stats().delivered_packets, 20);
        // every packet ≤ 5 hops → the average is too
        assert!(net.stats().avg_hops() <= 5.0);
    }

    #[test]
    fn intra_group_traffic_is_minimal() {
        let cfg = SimConfig::paper(2);
        let mut net = Network::new(cfg, ValiantPolicy::new(&cfg, 7));
        // src and dst in the same group, different routers
        let p = cfg.params.p;
        net.generate(NodeId::new(0), NodeId::from(p)); // router 0 → router 1
        net.run(200);
        assert_eq!(net.stats().delivered_packets, 1);
        assert_eq!(net.stats().hop_sum, 1, "one local hop expected");
    }

    #[test]
    fn intermediate_groups_are_uniform() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 9];
        for _ in 0..9000 {
            let g = ValiantPolicy::pick_intermediate(&mut rng, 9, GroupId::new(0), GroupId::new(4));
            counts[g.idx()] += 1;
        }
        assert_eq!(counts[0], 0);
        assert_eq!(counts[4], 0);
        for g in [1, 2, 3, 5, 6, 7, 8] {
            // 9000/7 ≈ 1286 each; allow ±20%
            assert!(
                (1000..1600).contains(&counts[g]),
                "group {g}: {}",
                counts[g]
            );
        }
    }
}
