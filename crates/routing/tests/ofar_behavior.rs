//! Behavioral tests of OFAR's §IV policies: threshold semantics, ring
//! patience, the starvation rule's observable consequences, and the
//! headline OFAR > OFAR-L separation under ADV+h.

use ofar_engine::{Network, SimConfig, Stats};
use ofar_routing::{MechanismKind, MisrouteThreshold, OfarConfig, OfarPolicy};
use ofar_topology::{Dragonfly, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Drive an OFAR network with `cfg_ofar` under ADV+offset Bernoulli-ish
/// traffic and return final stats.
fn run_ofar(ofar: OfarConfig, offset: usize, rate_num: u64, cycles: u64, h: usize) -> Stats {
    let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(h));
    let mut net = Network::new(cfg, OfarPolicy::with_config(&cfg, 5, ofar));
    let _topo = Dragonfly::new(cfg.params);
    let per_group = cfg.params.a * cfg.params.p;
    let nodes = net.num_nodes();
    let mut rng = SmallRng::seed_from_u64(9);
    for cycle in 0..cycles {
        if cycle % 8 < rate_num {
            for n in 0..nodes {
                let g = n / per_group;
                let dst_group = (g + offset) % cfg.params.groups();
                let dst = dst_group * per_group + rng.gen_range(0..per_group);
                net.generate(NodeId::from(n), NodeId::from(dst));
            }
        }
        net.step();
    }
    net.stats().clone()
}

#[test]
fn lower_patience_uses_the_ring_more() {
    let mut entries = Vec::new();
    for patience in [4u16, 255] {
        let ofar = OfarConfig {
            ring_patience: patience,
            ..OfarConfig::base()
        };
        let s = run_ofar(ofar, 2, 4, 3_000, 2);
        entries.push(s.ring_entries);
    }
    assert!(
        entries[0] > entries[1],
        "patience 4 ({}) must use the ring more than 255 ({})",
        entries[0],
        entries[1]
    );
}

#[test]
fn static_threshold_misroutes_less_than_permissive_variable() {
    // Static Th_min=100% only misroutes when the min VC is credit-dry;
    // a permissive variable factor misroutes much earlier.
    let tight = run_ofar(
        OfarConfig {
            threshold: MisrouteThreshold::Static {
                th_min: 1.0,
                th_nonmin: 0.1,
            },
            ..OfarConfig::base()
        },
        2,
        2,
        3_000,
        2,
    );
    let permissive = run_ofar(
        OfarConfig {
            threshold: MisrouteThreshold::Variable { factor: 0.9 },
            ..OfarConfig::base()
        },
        2,
        2,
        3_000,
        2,
    );
    let rate = |s: &Stats| {
        (s.local_misroutes + s.global_misroutes) as f64 / s.delivered_packets.max(1) as f64
    };
    assert!(
        rate(&tight) < rate(&permissive),
        "tight {} !< permissive {}",
        rate(&tight),
        rate(&permissive)
    );
}

#[test]
fn ofar_beats_ofar_l_under_advh() {
    // The headline separation (Fig. 5) at h = 3 where the 1/h wall
    // (0.33) is clearly below the Valiant bound (0.5): at an offered
    // load past the wall, base OFAR must deliver more than OFAR-L.
    let h = 3;
    let deliver = |kind: MechanismKind| {
        let cfg = kind.adapt_config(SimConfig::paper(h));
        let mut net = Network::new(cfg, kind.build(&cfg, 5));
        let _topo = Dragonfly::new(cfg.params);
        let per_group = cfg.params.a * cfg.params.p;
        let mut rng = SmallRng::seed_from_u64(11);
        let nodes = net.num_nodes();
        // offered 0.5 phits/node/cycle = 1 packet per node per 16 cycles
        for cycle in 0..8_000u64 {
            if cycle % 16 == 0 {
                for n in 0..nodes {
                    let g = n / per_group;
                    let dst_group = (g + h) % cfg.params.groups();
                    let dst = dst_group * per_group + rng.gen_range(0..per_group);
                    net.generate(NodeId::from(n), NodeId::from(dst));
                }
            }
            net.step();
        }
        net.stats().delivered_packets
    };
    let ofar = deliver(MechanismKind::Ofar);
    let ofar_l = deliver(MechanismKind::OfarL);
    assert!(
        ofar as f64 > 1.2 * ofar_l as f64,
        "OFAR ({ofar}) must clearly out-deliver OFAR-L ({ofar_l}) under ADV+h"
    );
}

#[test]
fn local_misroutes_concentrate_where_needed() {
    // Under ADV+h the local misroutes should actually fire (they are the
    // mechanism that dodges the hot l2 links); under near-idle uniform
    // traffic they must be rare.
    let busy = run_ofar(OfarConfig::base(), 2, 4, 3_000, 2);
    assert!(busy.local_misroutes > 0);

    let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
    let mut net = Network::new(cfg, OfarPolicy::new(&cfg, 5));
    let mut rng = SmallRng::seed_from_u64(3);
    for cycle in 0..3_000u64 {
        if cycle % 100 == 0 {
            let s = rng.gen_range(0..net.num_nodes());
            let d = (s + 37) % net.num_nodes();
            net.generate(NodeId::from(s), NodeId::from(d));
        }
        net.step();
    }
    let s = net.stats();
    assert_eq!(
        s.local_misroutes + s.global_misroutes,
        0,
        "near-idle traffic must go minimal"
    );
    assert_eq!(s.ring_entries, 0);
}

#[test]
fn max_ring_exits_bounds_abandonments() {
    // With max_ring_exits = 0, a packet that enters the ring can only
    // leave by delivery: exits stay zero.
    let mut cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
    cfg.max_ring_exits = 0;
    let ofar = OfarConfig {
        ring_patience: 1,
        ..OfarConfig::base()
    };
    let mut net = Network::new(cfg, OfarPolicy::with_config(&cfg, 5, ofar));
    let _topo = Dragonfly::new(cfg.params);
    let per_group = cfg.params.a * cfg.params.p;
    let mut rng = SmallRng::seed_from_u64(13);
    let nodes = net.num_nodes();
    for cycle in 0..4_000u64 {
        if cycle % 2 == 0 {
            for n in 0..nodes {
                let g = n / per_group;
                let dst = ((g + 2) % cfg.params.groups()) * per_group + rng.gen_range(0..per_group);
                net.generate(NodeId::from(n), NodeId::from(dst));
            }
        }
        net.step();
    }
    let s = net.stats();
    assert!(
        s.ring_entries > 0,
        "pressure must push packets onto the ring"
    );
    assert_eq!(s.ring_exits, 0, "exits are forbidden at max_ring_exits = 0");
    assert_eq!(s.ring_entries, s.ring_deliveries + net.in_flight_on_ring());
}

/// Extension trait hack for the test above.
trait InFlightOnRing {
    fn in_flight_on_ring(&self) -> u64;
}

impl<P: ofar_engine::Policy> InFlightOnRing for Network<P> {
    fn in_flight_on_ring(&self) -> u64 {
        // entries − deliveries = still riding (exits are zero here)
        self.stats().ring_entries - self.stats().ring_deliveries
    }
}
