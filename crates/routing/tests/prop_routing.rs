//! Property-based tests of the routing layer: ladder monotonicity for
//! arbitrary VC budgets, and end-to-end delivery for random traffic
//! under every mechanism.

use ofar_engine::{Network, Policy, SimConfig};
use ofar_routing::{MechanismKind, VcLadder};
use ofar_topology::NodeId;
use proptest::prelude::*;

fn pkt(local_hops: u8, global_hops: u8) -> ofar_engine::Packet {
    ofar_engine::Packet {
        id: 0,
        injected_at: 0,
        src: NodeId::new(0),
        dst: NodeId::new(1),
        intermediate: None,
        flags: 0,
        ring_exits_left: 0,
        local_hops,
        global_hops,
        ring_hops: 0,
        wait: 0,
        cur_group: ofar_topology::GroupId::new(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ladder_never_exceeds_vc_budget(
        vcs_local in 1usize..8,
        vcs_global in 1usize..4,
        local_hops in 0u8..10,
        global_hops in 0u8..4,
    ) {
        use ofar_routing::common::GroupPos;
        let l = VcLadder::new(vcs_local, vcs_global);
        let p = pkt(local_hops, global_hops);
        for pos in [GroupPos::Source, GroupPos::Intermediate, GroupPos::Destination] {
            prop_assert!(l.local_vc(&p, pos) < vcs_local);
            prop_assert!(l.global_vc(pos) < vcs_global);
        }
    }

    #[test]
    fn ladder_is_monotone_in_position(
        vcs_local in 3usize..8,
        vcs_global in 2usize..4,
        local_hops in 0u8..3,
    ) {
        use ofar_routing::common::GroupPos;
        let l = VcLadder::new(vcs_local, vcs_global);
        let p = pkt(local_hops, 0);
        // source < intermediate <= destination for locals; the canonical
        // deadlock-freedom argument needs strict source < intermediate
        // and intermediate < destination when budgets allow.
        let src = l.local_vc(&p, GroupPos::Source);
        let inter = l.local_vc(&p, GroupPos::Intermediate);
        let dst = l.local_vc(&p, GroupPos::Destination);
        prop_assert!(src < inter, "src {src} !< inter {inter}");
        prop_assert!(inter < dst || vcs_local < 3);
        prop_assert!(l.global_vc(GroupPos::Source) < l.global_vc(GroupPos::Intermediate));
    }

    #[test]
    fn every_mechanism_delivers_random_traffic(
        seed in any::<u64>(),
        pairs in prop::collection::vec((0usize..72, 0usize..72), 1..60),
    ) {
        for kind in [
            MechanismKind::Min,
            MechanismKind::Valiant,
            MechanismKind::Pb,
            MechanismKind::Par,
            MechanismKind::Ofar,
            MechanismKind::OfarL,
        ] {
            let cfg = kind.adapt_config(SimConfig::paper(2).with_seed(seed));
            let mut net = Network::new(cfg, kind.build(&cfg, seed));
            let mut expected = 0u64;
            for &(s, d) in &pairs {
                if s != d {
                    net.generate(NodeId::from(s), NodeId::from(d));
                    expected += 1;
                }
            }
            let mut guard = 0u64;
            while !net.drained() {
                net.step();
                guard += 1;
                prop_assert!(guard < 300_000, "{} failed to drain", kind.name());
            }
            prop_assert_eq!(net.stats().delivered_packets, expected);
        }
    }
}

#[test]
fn mechanism_ring_requirements_are_enforced() {
    // Building an OFAR network without a ring must panic.
    let cfg = SimConfig::paper(2); // RingMode::None
    let result = std::panic::catch_unwind(|| {
        let policy = MechanismKind::Ofar.build(&cfg, 0);
        let _ = Network::new(cfg, policy);
    });
    assert!(result.is_err(), "OFAR without a ring must be rejected");
    assert!(MechanismKind::Ofar.needs_ring());
    let policy = MechanismKind::Ofar.build(&cfg, 0);
    assert!(policy.needs_ring());
}
