//! [`MutantPolicy`] — the real mechanism with one seeded defect.
//!
//! The wrapper owns an unmodified [`Mechanism`] and perturbs *around*
//! it: header fields are skewed before the inner decision, requests are
//! rewritten after it. This keeps each operator a genuine fault in an
//! otherwise-correct mechanism (the mutant shares every line of the
//! production routing code) rather than a from-scratch strawman.
//!
//! Operators in [`OpCategory::Config`](crate::OpCategory) that perturb
//! mechanism *tunables* (patience, thresholds) are applied in
//! [`MutantPolicy::new`] through the public `build_tuned` path instead,
//! so they exercise exactly the configuration surface a user could
//! mis-set.

use crate::operator::MutationOp;
use ofar_engine::{
    InputCtx, NetSnapshot, Packet, Policy, PortKind, Request, RequestKind, RouterView, SimConfig,
    FLAG_AUX, FLAG_GLOBAL_MISROUTED, FLAG_LOCAL_MISROUTED,
};
use ofar_routing::{
    EnumerablePolicy, Mechanism, MechanismKind, MisrouteThreshold, OfarConfig, ProbeFeedback,
    ProbePin, RingGuard,
};
use ofar_topology::GroupId;

/// Whether a request moves on the canonical (VC-ladder) network rather
/// than the escape ring. VC-rewriting operators must not touch ring
/// traffic: the escape VC is outside the ladder by construction, and
/// corrupting it would fault the *engine's* ring plumbing, not the
/// mechanism's ladder discipline.
fn canonical(req: &Request) -> bool {
    !matches!(
        req.kind,
        RequestKind::RingEnter | RequestKind::RingAdvance | RequestKind::RingExit
    )
}

/// A real routing mechanism carrying one seeded defect from the
/// operator catalog.
#[derive(Clone, Debug)]
pub struct MutantPolicy {
    inner: Mechanism,
    op: MutationOp,
    vcs_local: usize,
    vcs_global: usize,
    groups: usize,
    max_ring_exits: u8,
}

impl MutantPolicy {
    /// Build `kind` against the (already adapted) `cfg` and seed the
    /// defect of `op` into it. Panics if `op` does not apply to `kind`
    /// (see [`MutationOp::applies_to`]) — the matrix filters first.
    pub fn new(op: MutationOp, kind: MechanismKind, cfg: &SimConfig, seed: u64) -> Self {
        assert!(
            op.applies_to(kind),
            "{} does not apply to {}",
            op.name(),
            kind.name()
        );
        let tuned = match op {
            MutationOp::RingEager => Some(OfarConfig {
                ring_patience: 0,
                ..OfarConfig::base()
            }),
            MutationOp::ThresholdAdmitAll => Some(OfarConfig {
                threshold: MisrouteThreshold::Static {
                    th_min: 0.0,
                    th_nonmin: 1.0,
                },
                ..OfarConfig::base()
            }),
            MutationOp::ThresholdAdmitNone => Some(OfarConfig {
                threshold: MisrouteThreshold::Static {
                    th_min: 0.0,
                    th_nonmin: -1.0,
                },
                ..OfarConfig::base()
            }),
            // The guard defect only matters when the ring is actually
            // under admission pressure: at paper-default patience the
            // guard is consulted a handful of times per million cycles
            // at h=2 and its absence is invisible. The mutant therefore
            // carries the ring-hungriest tuning the real code allows —
            // minimal patience and a threshold that admits no misroute,
            // so the ring is the only relief valve — and disables the
            // guard on top. Its oracle compares against the *same*
            // tuning with the guard left on (see `oracle.rs`), so the
            // guard is the only behavioral difference under test.
            MutationOp::RingAdmitAlways => Some(OfarConfig {
                ring_guard: RingGuard::Off,
                ring_patience: 1,
                threshold: MisrouteThreshold::Static {
                    th_min: 0.0,
                    th_nonmin: -1.0,
                },
                ..OfarConfig::base()
            }),
            _ => None,
        };
        MutantPolicy {
            inner: kind.build_tuned(cfg, seed, tuned, None),
            op,
            vcs_local: cfg.vcs_local,
            vcs_global: cfg.vcs_global,
            groups: cfg.params.groups(),
            max_ring_exits: cfg.max_ring_exits,
        }
    }

    /// The seeded operator.
    pub fn op(&self) -> MutationOp {
        self.op
    }

    /// Header perturbations applied before the inner mechanism decides.
    fn pre_route(&self, pkt: &mut Packet) {
        match self.op {
            MutationOp::ExitBudgetIgnored => pkt.ring_exits_left = self.max_ring_exits.max(1),
            // The inner policy increments `wait` itself; clearing it
            // here caps the observed wait at 1, below any patience >= 2.
            MutationOp::RingNever => pkt.wait = 0,
            MutationOp::LocalFlagStuck => pkt.flags &= !FLAG_LOCAL_MISROUTED,
            MutationOp::GlobalFlagStuck => pkt.flags &= !FLAG_GLOBAL_MISROUTED,
            MutationOp::AuxFlagStuck => pkt.flags |= FLAG_AUX,
            _ => {}
        }
    }

    /// Request rewrites applied after the inner mechanism decided.
    fn post_route(
        &self,
        view: &RouterView<'_>,
        input: InputCtx,
        mut req: Request,
    ) -> Option<Request> {
        let out_kind = view.fab.out_kind(req.out_port as usize);
        let vc = req.out_vc as usize;
        match self.op {
            // Ladder rewrites only touch canonical requests whose VC is
            // inside the ladder (embedded-ring escape VCs sit above it).
            MutationOp::LocalVcFlatten
                if canonical(&req) && out_kind == PortKind::Local && vc < self.vcs_local =>
            {
                req.out_vc = 0;
            }
            MutationOp::LocalVcSwap
                if canonical(&req) && out_kind == PortKind::Local && vc < self.vcs_local =>
            {
                // lint:allow(P002, vc count bounded by config well below 256)
                req.out_vc = ((vc + 1) % self.vcs_local) as u8;
            }
            MutationOp::LocalVcInvert
                if canonical(&req) && out_kind == PortKind::Local && vc < self.vcs_local =>
            {
                // lint:allow(P002, vc count bounded by config well below 256)
                req.out_vc = (self.vcs_local - 1 - vc) as u8;
            }
            MutationOp::GlobalVcFlatten
                if canonical(&req) && out_kind == PortKind::Global && vc < self.vcs_global =>
            {
                req.out_vc = 0;
            }
            MutationOp::GlobalVcSwap
                if canonical(&req) && out_kind == PortKind::Global && vc < self.vcs_global =>
            {
                // lint:allow(P002, vc count bounded by config well below 256)
                req.out_vc = ((vc + 1) % self.vcs_global) as u8;
            }
            MutationOp::EjectNever if req.kind == RequestKind::Eject => return None,
            MutationOp::RingRider
                if input.is_escape_vc
                    && matches!(req.kind, RequestKind::RingExit | RequestKind::Eject) =>
            {
                let ring = view.fab.ring_of_input(view.router, input.port, input.vc)?;
                let (port, vc) = view.escape_vc_of_ring(ring)?;
                return Some(Request::new(port, vc, RequestKind::RingAdvance));
            }
            _ => {}
        }
        Some(req)
    }
}

impl Policy for MutantPolicy {
    fn name(&self) -> &'static str {
        self.op.name()
    }

    fn route(
        &mut self,
        view: &RouterView<'_>,
        input: InputCtx,
        pkt: &mut Packet,
    ) -> Option<Request> {
        self.pre_route(pkt);
        let req = self.inner.route(view, input, pkt)?;
        self.post_route(view, input, req)
    }

    fn on_inject(&mut self, view: &RouterView<'_>, pkt: &mut Packet) -> usize {
        let vc = self.inner.on_inject(view, pkt);
        match self.op {
            MutationOp::IntermediateOffByOne => {
                if let Some(g) = pkt.intermediate {
                    pkt.intermediate = Some(GroupId::from((g.idx() + 1) % self.groups));
                }
            }
            MutationOp::IntermediateNever => pkt.intermediate = None,
            _ => {}
        }
        vc
    }

    fn end_cycle(&mut self, net: &NetSnapshot<'_>) {
        if self.op != MutationOp::PbStaleBroadcast {
            self.inner.end_cycle(net);
        }
    }

    fn needs_ring(&self) -> bool {
        self.inner.needs_ring()
    }
}

impl EnumerablePolicy for MutantPolicy {
    fn set_probe(&mut self, pin: Option<ProbePin>) {
        self.inner.set_probe(pin)
    }

    fn probe_feedback(&self) -> ProbeFeedback {
        self.inner.probe_feedback()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutant_reports_its_operator_name() {
        let kind = MechanismKind::Ofar;
        let cfg = kind.adapt_config(SimConfig::paper(2));
        let m = MutantPolicy::new(MutationOp::RingRider, kind, &cfg, 7);
        assert_eq!(m.name(), "ring-rider");
        assert!(m.needs_ring());
    }

    #[test]
    #[should_panic(expected = "does not apply")]
    fn inapplicable_pairs_are_rejected() {
        let kind = MechanismKind::Min;
        let cfg = kind.adapt_config(SimConfig::paper(2));
        let _ = MutantPolicy::new(MutationOp::RingRider, kind, &cfg, 0);
    }
}
