//! The kill matrix: every applicable `(operator × mechanism)` mutant
//! against the oracle stack, with a baked-in *covered set* for
//! regression enforcement.
//!
//! The covered set is the measured adequacy floor: pairs the stack
//! demonstrably kills today. CI re-runs the matrix and fails when a
//! covered pair *survives* — a silent hole opened in a verifier. Pairs
//! outside the covered set are the known gaps; they are listed by name
//! in DESIGN.md §11 and a new kill there is an improvement, never a
//! failure.

use crate::operator::MutationOp;
use crate::oracle::{run_mutant, MutantOutcome};
use ofar_engine::SimConfig;
use ofar_routing::MechanismKind;
use ofar_verify::OracleKind;
use rayon::prelude::*;
use std::fmt::Write as _;

/// The mechanism axis of the matrix: the paper's four canonical-network
/// mechanisms plus the PAR extension, with OFAR standing in for OFAR-L
/// (the dissection model shares every seam the operators target).
pub const MECHANISMS: [MechanismKind; 5] = [
    MechanismKind::Min,
    MechanismKind::Valiant,
    MechanismKind::Pb,
    MechanismKind::Par,
    MechanismKind::Ofar,
];

/// Measured adequacy floor: `(operator × mechanism)` pairs the oracle
/// stack kills at h=2 with the matrix's deterministic seeds. Checked in
/// by hand from a full matrix run (`cargo run -p ofar-bench --bin
/// mutants`); CI fails when any pair listed here survives.
///
/// A pair absent from this list is a *known gap* — see DESIGN.md §11
/// for the per-survivor analysis.
pub fn covered(op: MutationOp, mech: MechanismKind) -> bool {
    use MechanismKind as K;
    use MutationOp::*;
    match op {
        // Ladder-discipline breaks: undeclared transitions for the
        // VC-ordered mechanisms. OFAR's VC-agnostic local declaration is
        // the named gap for the local variants.
        LocalVcFlatten | LocalVcSwap | LocalVcInvert => {
            matches!(mech, K::Min | K::Valiant | K::Pb | K::Par)
        }
        GlobalVcFlatten => matches!(mech, K::Valiant | K::Pb | K::Par),
        GlobalVcSwap => true,
        // Protocol breaks with static witnesses.
        RingRider | ExitBudgetIgnored | RingNever | LocalFlagStuck => mech == K::Ofar,
        AuxFlagStuck => mech == K::Par,
        IntermediateOffByOne => matches!(mech, K::Valiant | K::Pb),
        // PB's declaration is a superset of MIN's, so never picking an
        // intermediate still conforms there — only Valiant's mandatory
        // phase-1 detour makes the defect observable (see DESIGN.md §11
        // for PB as a named gap).
        IntermediateNever => mech == K::Valiant,
        // Delivery suppression is invisible statically; the watchdog
        // carries it.
        EjectNever => true,
        // Declaration and configuration mutants die in the certifiers.
        DeclDropEscapeDrain | DeclFlattenLadder | DeclBackEdge | DeclDropInject => true,
        CfgShallowRingBuffer | CfgNoRing | CfgFoldedLadder => true,
        // Credit-accounting seams die in the runtime auditor.
        EngineCreditLeak | EngineCreditDouble | EngineEscapeVcSkew => true,
        EngineRingBubbleSkip => mech == K::Ofar,
        // The phase-boundary source mutant dies in the static lint
        // oracle (R001 cross-shard write).
        SourceCreditPhaseHoist => true,
        // The schedule-sensitivity seams die in the commutativity
        // certifier: permuted shard orders make the cross-shard credit
        // landing (and the ledger-order fold) visible in the epoch
        // snapshots.
        EngineCreditInstant | EngineEffectOrderFold => true,
        // Congestion-management seams: the bypassed token bucket dies in
        // the auditor's throttle-token law on every mechanism (the
        // sustained-overload stage keeps the buckets short for the whole
        // run); the disabled admission guard dies in the synchronized-
        // wave admission watchdog.
        EngineThrottleBypass => true,
        RingAdmitAlways => mech == K::Ofar,
        // Known survivors: performance-policy skews that keep every
        // safety invariant, and the flag OFAR's per-transition ranking
        // cannot distinguish because the engine re-derives it at every
        // grant (see DESIGN.md §11).
        RingEager | ThresholdAdmitAll | ThresholdAdmitNone | PbStaleBroadcast | GlobalFlagStuck => {
            false
        }
    }
}

/// The full matrix result.
#[derive(Clone, Debug)]
pub struct KillMatrix {
    /// One outcome per applicable `(operator × mechanism)` pair.
    pub outcomes: Vec<MutantOutcome>,
}

/// Every applicable `(operator × mechanism)` pair over the default
/// mechanism axis, in report order.
pub fn pairs() -> Vec<(MutationOp, MechanismKind)> {
    MutationOp::ALL
        .iter()
        .flat_map(|&op| {
            MECHANISMS
                .iter()
                .filter(move |&&m| op.applies_to(m))
                .map(move |&m| (op, m))
        })
        .collect()
}

impl KillMatrix {
    /// Run the whole matrix against `cfg` (pairs in parallel, each with
    /// a seed derived deterministically from `seed` and its index).
    pub fn run(cfg: &SimConfig, seed: u64) -> KillMatrix {
        let pairs = pairs();
        let outcomes = pairs
            .par_iter()
            .enumerate()
            .map(|(i, &(op, mech))| run_mutant(op, mech, cfg, seed ^ (0xC0FFEE + 7919 * i as u64)))
            .collect();
        KillMatrix { outcomes }
    }

    /// Mutants the whole stack missed.
    pub fn survivors(&self) -> Vec<&MutantOutcome> {
        self.outcomes.iter().filter(|o| o.survived()).collect()
    }

    /// Covered pairs that survived this run — each one is a regression
    /// in some oracle.
    pub fn regressions(&self) -> Vec<&MutantOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.survived() && covered(o.op, o.mech))
            .collect()
    }

    /// Distinct operators killed by at least one oracle on at least one
    /// mechanism.
    pub fn distinct_killed_ops(&self) -> usize {
        let mut ops: Vec<&str> = self
            .outcomes
            .iter()
            .filter(|o| !o.survived())
            .map(|o| o.op.name())
            .collect();
        ops.sort_unstable();
        ops.dedup();
        ops.len()
    }

    /// Kill rate over the covered set (1.0 when no covered pair
    /// survived).
    pub fn covered_kill_rate(&self) -> f64 {
        let covered_pairs: Vec<_> = self
            .outcomes
            .iter()
            .filter(|o| covered(o.op, o.mech))
            .collect();
        if covered_pairs.is_empty() {
            return 1.0;
        }
        let killed = covered_pairs.iter().filter(|o| !o.survived()).count();
        killed as f64 / covered_pairs.len() as f64
    }

    /// Render the matrix as a fixed-width table: one row per operator,
    /// one column per mechanism, each cell naming the killing oracle
    /// (or `SURVIVED` / `-` for inapplicable).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:<26}", "operator");
        for m in MECHANISMS {
            let _ = write!(out, "{:>14}", m.name());
        }
        out.push('\n');
        for &op in MutationOp::ALL {
            if !MECHANISMS.iter().any(|&m| op.applies_to(m)) {
                continue;
            }
            let _ = write!(out, "{:<26}", op.name());
            for m in MECHANISMS {
                let cell = if !op.applies_to(m) {
                    "-".to_string()
                } else {
                    match self.outcomes.iter().find(|o| o.op == op && o.mech == m) {
                        Some(o) => match o.killed_by() {
                            Some((oracle, _)) => oracle.name().to_string(),
                            None => {
                                if covered(op, m) {
                                    "SURVIVED!".to_string()
                                } else {
                                    "survived".to_string()
                                }
                            }
                        },
                        None => "?".to_string(),
                    }
                };
                let _ = write!(out, "{cell:>14}");
            }
            out.push('\n');
        }
        out
    }

    /// Render the per-kill witness list (operator, mechanism, oracle,
    /// witness) for killed mutants.
    pub fn render_witnesses(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            if let Some((oracle, witness)) = o.killed_by() {
                let _ = writeln!(
                    out,
                    "{} x {}: killed by {} — {}",
                    o.op.name(),
                    o.mech.name(),
                    oracle.name(),
                    witness
                );
            }
        }
        out
    }

    /// Per-oracle kill counts, in stack order.
    pub fn kills_per_oracle(&self) -> Vec<(OracleKind, usize)> {
        [
            OracleKind::Lint,
            OracleKind::Race,
            OracleKind::Cdg,
            OracleKind::Conformance,
            OracleKind::Audit,
            OracleKind::Watchdog,
        ]
        .into_iter()
        .map(|k| {
            let n = self
                .outcomes
                .iter()
                .filter(|o| o.killed_by().is_some_and(|(first, _)| first == k))
                .count();
            (k, n)
        })
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_list_is_substantial_and_deduplicated() {
        let ps = pairs();
        assert!(ps.len() >= 50, "only {} pairs", ps.len());
        let mut keys: Vec<_> = ps.iter().map(|(o, m)| (o.name(), m.name())).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), ps.len());
    }
}
