//! The mutation-operator catalog.
//!
//! Each operator is one *semantic* fault class — not a syntactic AST
//! tweak but a deliberate break of one rule the paper's safety argument
//! rests on (VC ladder discipline, misroute flag protocol, escape-ring
//! budget/patience, bubble flow control, credit accounting, or the
//! declarations the verifiers consume). Operators fall into five
//! categories by *where* the fault is seeded:
//!
//! * [`OpCategory::Policy`] — a [`crate::MutantPolicy`] wrapper rewrites
//!   the real mechanism's requests or perturbs packet header state
//!   before delegating;
//! * [`OpCategory::Declaration`] — the `MechanismDeps` fed to the
//!   verifiers is mutated while the routing code stays correct;
//! * [`OpCategory::Config`] — the `SimConfig` is skewed past a proof
//!   precondition (ring depth, ring presence, ladder width);
//! * [`OpCategory::Engine`] — the engine's own flow control is mutated
//!   behind the `cfg(feature = "mutate")` seam
//!   ([`ofar_engine::EngineMutation`]);
//! * [`OpCategory::Source`] — the engine's *source text* is mutated and
//!   re-analyzed: a phase-discipline break the single-threaded engine
//!   still simulates correctly, observable only to the static lint
//!   oracle (see `crate::lint_oracle`).

use ofar_routing::MechanismKind;

/// Where a mutation operator seeds its fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpCategory {
    /// Request/header rewriting in a policy wrapper.
    Policy,
    /// Mutation of the declared dependency graph.
    Declaration,
    /// Mutation of the simulator configuration.
    Config,
    /// Flow-control mutation inside the engine.
    Engine,
    /// Textual mutation of the engine's step-loop source, checked by
    /// the phase-discipline analyzer instead of a runtime oracle.
    Source,
}

/// One mutation operator of the catalog.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MutationOp {
    // --- VC ladder discipline (policy) --------------------------------
    /// Every canonical local-port request reuses VC 0 (the ladder climb
    /// on local hops is forgotten). Generalizes PR 4's hand-written
    /// `ValFlatLadder`/`MinFlatVc` mutants.
    LocalVcFlatten,
    /// Canonical local-port requests shift one VC up (mod the ladder):
    /// a systematic off-by-one in the local VC computation.
    LocalVcSwap,
    /// Canonical local-port requests use the mirrored VC index
    /// (`vl-1-vc`): ladder direction inverted.
    LocalVcInvert,
    /// Every canonical global-port request reuses VC 0: the phase-2
    /// global hop forgets to climb.
    GlobalVcFlatten,
    /// Canonical global-port requests shift one VC up (mod the global
    /// ladder width).
    GlobalVcSwap,

    // --- delivery / escape-ring protocol (policy) ---------------------
    /// Ejection requests are suppressed: packets reach their
    /// destination and sit there forever.
    EjectNever,
    /// On-ring exits and ejections become ring advances: an on-ring
    /// packet rides past its destination forever (PR 4's
    /// `OfarRingRider`, promoted).
    RingRider,
    /// The per-packet ring-exit budget is reset before every decision —
    /// the §IV-C livelock bound (`max_ring_exits`) is never spent.
    ExitBudgetIgnored,
    /// Ring patience forced to zero (config-built): any blocked head
    /// with an available escape VC enters the ring immediately.
    RingEager,
    /// The wait counter is cleared before every decision: the patience
    /// threshold is never reached and the escape ring is never entered.
    RingNever,

    // --- misroute flag protocol (policy) ------------------------------
    /// `FLAG_LOCAL_MISROUTED` is cleared before every decision: one
    /// local misroute per group becomes unbounded local misrouting.
    LocalFlagStuck,
    /// `FLAG_GLOBAL_MISROUTED` is cleared before every decision: the
    /// at-most-one-global-misroute rule is voided.
    GlobalFlagStuck,
    /// PAR's provisional flag (`FLAG_AUX`) is re-set before every
    /// decision: the provisional walk to the global-link host never
    /// commits.
    AuxFlagStuck,

    // --- Valiant intermediate choice (policy) -------------------------
    /// The chosen intermediate group is shifted by one (mod groups)
    /// after injection — an off-by-one that can select the source or
    /// destination group.
    IntermediateOffByOne,
    /// The intermediate group is dropped at injection: Valiant-committed
    /// mechanisms silently route minimally on phase-1 resources.
    IntermediateNever,

    // --- PB piggyback state / OFAR thresholds (policy, config-built) --
    /// PB's congestion broadcast never runs (`end_cycle` suppressed):
    /// decisions use the stale initial view forever.
    PbStaleBroadcast,
    /// OFAR misroute threshold admits every candidate, however
    /// congested (`Th_nonmin = 100%`).
    ThresholdAdmitAll,
    /// OFAR misroute threshold admits no candidate ever: misrouting is
    /// disabled outright.
    ThresholdAdmitNone,
    /// The escape-ring admission guard is disabled (config-built,
    /// `RingGuard::Off`): blocked heads enter the ring regardless of its
    /// sensed occupancy. Past saturation the low-bandwidth ring turns
    /// into a congestion sink and sustained delivery collapses — caught
    /// by the overload rate-watchdog, not by any safety oracle (the
    /// bubble keeps the ring deadlock-free either way).
    RingAdmitAlways,

    // --- declaration mutations ----------------------------------------
    /// All escape-entry edges (`… → escape`) are dropped from the OFAR
    /// declaration: canonical cycles lose their Duato drain.
    DeclDropEscapeDrain,
    /// Every local class in the declaration is retargeted to VC 0: the
    /// declared ladder collapses into a cycle.
    DeclFlattenLadder,
    /// A back edge from the top ladder VC to VC 0 is added to an
    /// otherwise acyclic declaration.
    DeclBackEdge,
    /// All injection edges are dropped from the declaration (the code
    /// still injects): the declaration under-approximates.
    DeclDropInject,

    // --- configuration mutations ---------------------------------------
    /// Ring buffers shrunk to one packet: the §IV-C bubble condition
    /// (`buf_ring ≥ 2·packet_size`) is violated.
    CfgShallowRingBuffer,
    /// The escape ring is removed from an OFAR configuration.
    CfgNoRing,
    /// The VC ladder is folded below the mechanism's path length
    /// (reduced-VC configuration without an escape ring).
    CfgFoldedLadder,

    // --- engine flow-control mutations ----------------------------------
    /// Returned credits are periodically dropped at the landing loop
    /// ([`ofar_engine::EngineMutation::CreditLeak`]).
    EngineCreditLeak,
    /// Returned credits periodically land twice
    /// ([`ofar_engine::EngineMutation::CreditDouble`]).
    EngineCreditDouble,
    /// Returned credits periodically land on the next VC of the port
    /// ([`ofar_engine::EngineMutation::EscapeVcSkew`]).
    EngineEscapeVcSkew,
    /// Ring entry granted with space for one packet instead of two
    /// ([`ofar_engine::EngineMutation::RingBubbleSkip`]).
    EngineRingBubbleSkip,
    /// The congestion-management token bucket is ignored at injection
    /// ([`ofar_engine::EngineMutation::ThrottleBypass`]): the NIC
    /// injects on a short bucket, so granted − consumed drifts below
    /// the summed levels and the `ThrottleTokenLaw` deep check fires.
    EngineThrottleBypass,
    /// Returned credits land on the upstream router's counter directly
    /// from the parallel `route` phase instead of riding the effects
    /// ledger ([`ofar_engine::EngineMutation::CreditInstant`]): a
    /// reintroduced cross-shard write. Conservation still holds and the
    /// identity-schedule run is unchanged, so the auditor and watchdog
    /// both pass the mutant — only the commutativity certifier, which
    /// permutes the shard order, can observe it.
    EngineCreditInstant,
    /// `commit_effects` folds a non-commutative hash of the effects
    /// ledger's push order into a serialized counter
    /// ([`ofar_engine::EngineMutation::EffectOrderFold`]): the applied
    /// per-queue state stays correct, but the folded value leaks the
    /// shard schedule into the snapshot. The dynamic twin of the R006
    /// static rule, killable only by the commutativity certifier.
    EngineEffectOrderFold,

    // --- source mutations (phase discipline) -----------------------------
    /// The credit return in `execute_grant` is hoisted across the phase
    /// boundary: the deferred `Effect::Credit` push (applied by
    /// `commit_effects` in the serial commit phase) becomes a direct
    /// write into the *upstream* router's credit queue from the
    /// parallel `route` phase. The single-threaded engine simulates the
    /// mutant identically — the ready-at stamp travels in the queue
    /// entry either way — but the parallelization contract is broken:
    /// only the R001 cross-shard-write rule of the lint oracle sees it.
    SourceCreditPhaseHoist,
}

impl MutationOp {
    /// Every operator in the catalog, in report order.
    pub const ALL: &'static [MutationOp] = &[
        MutationOp::LocalVcFlatten,
        MutationOp::LocalVcSwap,
        MutationOp::LocalVcInvert,
        MutationOp::GlobalVcFlatten,
        MutationOp::GlobalVcSwap,
        MutationOp::EjectNever,
        MutationOp::RingRider,
        MutationOp::ExitBudgetIgnored,
        MutationOp::RingEager,
        MutationOp::RingNever,
        MutationOp::LocalFlagStuck,
        MutationOp::GlobalFlagStuck,
        MutationOp::AuxFlagStuck,
        MutationOp::IntermediateOffByOne,
        MutationOp::IntermediateNever,
        MutationOp::PbStaleBroadcast,
        MutationOp::ThresholdAdmitAll,
        MutationOp::ThresholdAdmitNone,
        MutationOp::RingAdmitAlways,
        MutationOp::DeclDropEscapeDrain,
        MutationOp::DeclFlattenLadder,
        MutationOp::DeclBackEdge,
        MutationOp::DeclDropInject,
        MutationOp::CfgShallowRingBuffer,
        MutationOp::CfgNoRing,
        MutationOp::CfgFoldedLadder,
        MutationOp::EngineCreditLeak,
        MutationOp::EngineCreditDouble,
        MutationOp::EngineEscapeVcSkew,
        MutationOp::EngineRingBubbleSkip,
        MutationOp::EngineThrottleBypass,
        MutationOp::EngineCreditInstant,
        MutationOp::EngineEffectOrderFold,
        MutationOp::SourceCreditPhaseHoist,
    ];

    /// Short stable name (kill-matrix row label, DESIGN.md registry key).
    pub fn name(self) -> &'static str {
        match self {
            MutationOp::LocalVcFlatten => "local-vc-flatten",
            MutationOp::LocalVcSwap => "local-vc-swap",
            MutationOp::LocalVcInvert => "local-vc-invert",
            MutationOp::GlobalVcFlatten => "global-vc-flatten",
            MutationOp::GlobalVcSwap => "global-vc-swap",
            MutationOp::EjectNever => "eject-never",
            MutationOp::RingRider => "ring-rider",
            MutationOp::ExitBudgetIgnored => "exit-budget-ignored",
            MutationOp::RingEager => "ring-eager",
            MutationOp::RingNever => "ring-never",
            MutationOp::LocalFlagStuck => "local-flag-stuck",
            MutationOp::GlobalFlagStuck => "global-flag-stuck",
            MutationOp::AuxFlagStuck => "aux-flag-stuck",
            MutationOp::IntermediateOffByOne => "intermediate-off-by-one",
            MutationOp::IntermediateNever => "intermediate-never",
            MutationOp::PbStaleBroadcast => "pb-stale-broadcast",
            MutationOp::ThresholdAdmitAll => "threshold-admit-all",
            MutationOp::ThresholdAdmitNone => "threshold-admit-none",
            MutationOp::RingAdmitAlways => "ring-admit-always",
            MutationOp::DeclDropEscapeDrain => "decl-drop-escape-drain",
            MutationOp::DeclFlattenLadder => "decl-flatten-ladder",
            MutationOp::DeclBackEdge => "decl-back-edge",
            MutationOp::DeclDropInject => "decl-drop-inject",
            MutationOp::CfgShallowRingBuffer => "cfg-shallow-ring-buffer",
            MutationOp::CfgNoRing => "cfg-no-ring",
            MutationOp::CfgFoldedLadder => "cfg-folded-ladder",
            MutationOp::EngineCreditLeak => "engine-credit-leak",
            MutationOp::EngineCreditDouble => "engine-credit-double",
            MutationOp::EngineEscapeVcSkew => "engine-escape-vc-skew",
            MutationOp::EngineRingBubbleSkip => "engine-ring-bubble-skip",
            MutationOp::EngineThrottleBypass => "engine-throttle-bypass",
            MutationOp::EngineCreditInstant => "engine-credit-instant",
            MutationOp::EngineEffectOrderFold => "engine-effect-order-fold",
            MutationOp::SourceCreditPhaseHoist => "source-credit-phase-hoist",
        }
    }

    /// Which seam the operator mutates.
    pub fn category(self) -> OpCategory {
        use MutationOp::*;
        match self {
            DeclDropEscapeDrain | DeclFlattenLadder | DeclBackEdge | DeclDropInject => {
                OpCategory::Declaration
            }
            CfgShallowRingBuffer | CfgNoRing | CfgFoldedLadder => OpCategory::Config,
            EngineCreditLeak
            | EngineCreditDouble
            | EngineEscapeVcSkew
            | EngineRingBubbleSkip
            | EngineThrottleBypass
            | EngineCreditInstant
            | EngineEffectOrderFold => OpCategory::Engine,
            SourceCreditPhaseHoist => OpCategory::Source,
            _ => OpCategory::Policy,
        }
    }

    /// Whether applying the operator to this mechanism yields a
    /// *distinct* mutant (operators that would be identity — e.g.
    /// flattening MIN's single global VC — are excluded instead of
    /// reported as spurious survivors).
    pub fn applies_to(self, kind: MechanismKind) -> bool {
        use MechanismKind as K;
        use MutationOp::*;
        match self {
            LocalVcFlatten | LocalVcSwap | LocalVcInvert | GlobalVcSwap | EjectNever
            | DeclDropInject | EngineCreditLeak | EngineCreditDouble | EngineEscapeVcSkew
            | EngineThrottleBypass => true,
            // MIN only ever uses global VC 0: flattening is the identity.
            GlobalVcFlatten => kind != K::Min,
            RingRider | ExitBudgetIgnored | RingEager | RingNever | LocalFlagStuck
            | GlobalFlagStuck | ThresholdAdmitAll | ThresholdAdmitNone | RingAdmitAlways
            | DeclDropEscapeDrain | CfgShallowRingBuffer | CfgNoRing | EngineRingBubbleSkip => {
                matches!(kind, K::Ofar | K::OfarL)
            }
            AuxFlagStuck => kind == K::Par,
            IntermediateOffByOne => matches!(kind, K::Valiant | K::Pb | K::Par),
            // PAR picks its intermediate in-transit, not at injection.
            IntermediateNever => matches!(kind, K::Valiant | K::Pb),
            PbStaleBroadcast => kind == K::Pb,
            // OFAR's near-complete declaration keeps its escape drain
            // when flattened, so the mutant is not a defect there.
            DeclFlattenLadder | DeclBackEdge => {
                matches!(kind, K::Min | K::Valiant | K::Pb | K::Par)
            }
            // MIN's two-VC ladder genuinely fits a folded configuration,
            // so the folded config is only a defect for the three-phase
            // mechanisms.
            CfgFoldedLadder => matches!(kind, K::Valiant | K::Pb | K::Par),
            // The source mutant lives in the mechanism-independent
            // engine text; one matrix row (under the reference
            // mechanism) keeps the pair list 1:1 with distinct mutants.
            SourceCreditPhaseHoist => kind == K::Ofar,
            // The commutativity seams live in the mechanism-independent
            // credit loop and effect ledger; like the source mutant,
            // one matrix row under the reference mechanism keeps the
            // pair list 1:1 with distinct mutants.
            EngineCreditInstant | EngineEffectOrderFold => kind == K::Ofar,
        }
    }

    /// One-line description for reports.
    pub fn describe(self) -> &'static str {
        match self {
            MutationOp::LocalVcFlatten => "local hops reuse VC 0 (ladder climb forgotten)",
            MutationOp::LocalVcSwap => "local VC off-by-one (mod ladder)",
            MutationOp::LocalVcInvert => "local VC ladder direction inverted",
            MutationOp::GlobalVcFlatten => "global hops reuse VC 0",
            MutationOp::GlobalVcSwap => "global VC off-by-one (mod ladder)",
            MutationOp::EjectNever => "ejection suppressed at the destination",
            MutationOp::RingRider => "ring exits/ejections become ring advances",
            MutationOp::ExitBudgetIgnored => "ring-exit budget never decremented",
            MutationOp::RingEager => "ring patience zero (immediate escape entry)",
            MutationOp::RingNever => "wait counter cleared (escape ring never entered)",
            MutationOp::LocalFlagStuck => "local-misroute flag never observed set",
            MutationOp::GlobalFlagStuck => "global-misroute flag never observed set",
            MutationOp::AuxFlagStuck => "PAR provisional flag re-set every decision",
            MutationOp::IntermediateOffByOne => "intermediate group off-by-one after injection",
            MutationOp::IntermediateNever => "Valiant intermediate dropped at injection",
            MutationOp::PbStaleBroadcast => "PB congestion broadcast suppressed",
            MutationOp::ThresholdAdmitAll => "misroute threshold admits any occupancy",
            MutationOp::ThresholdAdmitNone => "misroute threshold admits nothing",
            MutationOp::RingAdmitAlways => "escape-ring admission guard disabled",
            MutationOp::DeclDropEscapeDrain => "declared escape-entry edges removed",
            MutationOp::DeclFlattenLadder => "declared local ladder collapsed to VC 0",
            MutationOp::DeclBackEdge => "cycle-closing back edge added to declaration",
            MutationOp::DeclDropInject => "declared injection edges removed",
            MutationOp::CfgShallowRingBuffer => "ring buffers below the 2-packet bubble",
            MutationOp::CfgNoRing => "escape ring removed from an OFAR config",
            MutationOp::CfgFoldedLadder => "VC ladder folded below the path length",
            MutationOp::EngineCreditLeak => "credit returns periodically dropped",
            MutationOp::EngineCreditDouble => "credit returns periodically doubled",
            MutationOp::EngineEscapeVcSkew => "credit returns land on the wrong VC",
            MutationOp::EngineRingBubbleSkip => "ring entry granted without the bubble",
            MutationOp::EngineThrottleBypass => "injection token bucket ignored",
            MutationOp::EngineCreditInstant => {
                "credit returns land cross-shard mid-route-phase (no ledger)"
            }
            MutationOp::EngineEffectOrderFold => {
                "effect-ledger push order folded into a serialized counter"
            }
            MutationOp::SourceCreditPhaseHoist => {
                "credit return hoisted across the route/commit phase boundary"
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_large_and_names_are_unique() {
        assert!(MutationOp::ALL.len() >= 20);
        let mut names: Vec<&str> = MutationOp::ALL.iter().map(|o| o.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), MutationOp::ALL.len());
    }

    #[test]
    fn every_operator_applies_somewhere() {
        for &op in MutationOp::ALL {
            assert!(
                crate::MECHANISMS.iter().any(|&k| op.applies_to(k)),
                "{} applies to no mechanism",
                op.name()
            );
        }
    }
}
