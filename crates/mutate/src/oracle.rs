//! Drive one mutant through the oracle stack and record per-oracle
//! verdicts.
//!
//! Which oracles run depends on the operator's category:
//!
//! * **Config** mutants go to the CDG certifier ([`ofar_verify::certify`])
//!   — a skewed configuration must be refused before cycle 0, so the
//!   other oracles never see it.
//! * **Declaration** mutants go to the CDG certifier over the mutated
//!   declaration ([`ofar_verify::certify_decl`]) *and* to the
//!   conformance checker with the *real* policy against that
//!   declaration — a declaration can be wrong in two directions
//!   (cyclic, or an under-approximation of the code) and the two
//!   oracles split that work.
//! * **Policy** mutants go to the conformance model checker against the
//!   real declaration, then through an audited adversarial burst
//!   (runtime auditor + progress watchdog).
//! * **Engine** mutants bypass the static stack entirely (the routing
//!   code is untouched) and go straight to the audited burst — except
//!   the two schedule-sensitivity seams (`CreditInstant`,
//!   `EffectOrderFold`), which every identity-schedule oracle passes by
//!   construction and which therefore go to the commutativity
//!   certifier ([`ofar_analyze::race`]) instead.
//! * **Source** mutants never run at all: the mutated engine text goes
//!   to the phase-discipline analyzer ([`crate::lint_oracle`]), the
//!   only oracle that can observe a defect with identical
//!   single-threaded behavior.
//!
//! Every oracle that runs gets a recorded verdict, even after an
//! earlier oracle already killed the mutant — the matrix wants to know
//! *all* the detectors a defect trips, not just the first.

use crate::operator::{MutationOp, OpCategory};
use crate::MutantPolicy;
use ofar_analyze::race::{self, CertifyOutcome, InjectFn, RaceConfig, Witness};
use ofar_core::{burst_net, RunConfig, StallKind};
use ofar_engine::{EngineMutation, Network, Policy, RingMode, SimConfig};
use ofar_routing::{ClassEdge, ClassId, DependencyDecl, EdgeWhy, MechanismDeps, MechanismKind};
use ofar_topology::Dragonfly;
use ofar_traffic::{Bernoulli, TrafficGen, TrafficSpec};
use ofar_verify::{
    certify, certify_decl, conformance_with, OracleKind, OracleVerdict, RankingKind,
};

/// Deep-audit interval for mutation bursts: tight enough that a leaked
/// or doubled credit is caught within a handful of cycles of the seam
/// firing, loose enough that an h=2 burst stays fast.
const AUDIT_INTERVAL: u64 = 8;

/// Packets per node in the dynamic burst. Adversarial traffic at this
/// depth saturates the global links at h=2 without making a single
/// (mutant × oracle) run the matrix's critical path.
const BURST_DEPTH: usize = 8;

/// Every credit-seam mutation fires on every tick: the engine operators
/// model a *systematically* wrong flow-control implementation, not a
/// transient upset (PR-level fault injection already covers those).
const ENGINE_PERIOD: u32 = 1;

/// Offered load of the sustained-overload dynamic stage,
/// phits/(node·cycle). Well past every mechanism's ADV+1 saturation at
/// h=2, so router buffers stay congested — and the token buckets stay
/// short — for the whole run.
const OVERLOAD_OFFERED: f64 = 0.5;

/// Length of the sustained-overload segment in cycles.
const OVERLOAD_CYCLES: u64 = 4_000;

/// Rate-watchdog window: every `OVERLOAD_WINDOW` cycles a delivered
/// delta is compared against its floor.
const OVERLOAD_WINDOW: u64 = 500;

/// Minimum total packets delivered per window once the pipeline has
/// filled (the first window is exempt). Every mechanism sustains
/// several hundred at h=2 under [`OVERLOAD_OFFERED`]; this floor only
/// exists so the overload stage still carries a liveness check for
/// operators whose kill comes from the auditor.
const OVERLOAD_TOTAL_FLOOR: u64 = 150;

/// Packets per node of the synchronized wave driven at the admission
/// watchdog (see [`wave_admission_verdicts`]).
const WAVE_DEPTH: usize = 8;

/// Observation horizon of the admission watchdog, in cycles. Matches
/// [`ofar_routing::RING_GUARD_GRACE`]: the guard's whole effect lives
/// inside this window — past it, grace expires and guarded admissions
/// converge with unguarded ones (by design; the bound is what keeps the
/// liveness argument intact).
const WAVE_OBSERVE: u64 = 100;

/// Maximum escape-ring entries a guarded OFAR admits within
/// [`WAVE_OBSERVE`] cycles of the wave. Calibrated at h=2 across seeds
/// (the wave is closed-loop and nearly seed-invariant): the guard-on
/// twin of the `ring-admit-always` tuning admits 72 entries — those
/// made while the ring still sensed below threshold — while the
/// guard-off mutant admits 171, piling onto a ring it can sense is
/// already saturated. The cap sits between the two with margin on both
/// sides.
const WAVE_ENTRY_CAP: u64 = 120;

/// The verdicts of one mutant against every oracle that ran.
#[derive(Clone, Debug)]
pub struct MutantOutcome {
    /// The seeded operator.
    pub op: MutationOp,
    /// The host mechanism.
    pub mech: MechanismKind,
    /// Per-oracle verdicts, in stack order. Oracles that do not apply
    /// to the operator's category are absent.
    pub verdicts: Vec<(OracleKind, OracleVerdict)>,
}

impl MutantOutcome {
    /// The first oracle that killed the mutant, with its witness.
    pub fn killed_by(&self) -> Option<(OracleKind, &str)> {
        self.verdicts.iter().find_map(|(k, v)| match v {
            OracleVerdict::Fail { witness } => Some((*k, witness.as_str())),
            OracleVerdict::Pass => None,
        })
    }

    /// Whether the mutant survived the whole stack.
    pub fn survived(&self) -> bool {
        self.killed_by().is_none()
    }
}

/// Build the mutated configuration for a [`OpCategory::Config`]
/// operator from the mechanism-adapted base.
fn mutate_config(op: MutationOp, cfg: &SimConfig) -> SimConfig {
    let mut cfg = *cfg;
    match op {
        MutationOp::CfgShallowRingBuffer => cfg.buf_ring = cfg.packet_size,
        MutationOp::CfgNoRing => cfg.ring = RingMode::None,
        MutationOp::CfgFoldedLadder => {
            // The fold is the defect under test, not the ring: keep the
            // mechanism-adapted ring mode and only collapse the ladder.
            let folded = SimConfig::reduced_vcs(cfg.params.h);
            cfg.vcs_local = folded.vcs_local;
            cfg.vcs_global = folded.vcs_global;
            cfg.vcs_injection = folded.vcs_injection;
        }
        _ => unreachable!("{} is not a config operator", op.name()),
    }
    cfg
}

/// Build the mutated declaration for a [`OpCategory::Declaration`]
/// operator from the mechanism's real declaration.
fn mutate_decl(op: MutationOp, decl: &MechanismDeps) -> MechanismDeps {
    let mut decl = decl.clone();
    match op {
        MutationOp::DeclDropEscapeDrain => {
            decl.edges
                .retain(|e| !(e.to == ClassId::Escape && e.from != ClassId::Escape));
        }
        MutationOp::DeclFlattenLadder => {
            for e in &mut decl.edges {
                if let ClassId::Local { .. } = e.to {
                    e.to = ClassId::Local { vc: 0 };
                }
            }
            decl.edges.sort_unstable_by_key(|a| (a.from, a.to));
            decl.edges.dedup_by_key(|e| (e.from, e.to));
        }
        MutationOp::DeclBackEdge => {
            let top = decl
                .edges
                .iter()
                .filter_map(|e| match e.to {
                    ClassId::Local { vc } => Some(vc),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            decl.edges.push(ClassEdge {
                from: ClassId::Local { vc: top },
                to: ClassId::Local { vc: 0 },
                why: EdgeWhy::MisrouteLocal,
            });
        }
        MutationOp::DeclDropInject => {
            decl.edges
                .retain(|e| !matches!(e.from, ClassId::Inject { .. }));
        }
        _ => unreachable!("{} is not a declaration operator", op.name()),
    }
    decl
}

/// Run the two dynamic oracles: an audited adversarial burst over a
/// caller-prepared network. Returns `(audit, watchdog)` verdicts.
fn dynamic_verdicts<P: Policy>(net: &mut Network<P>, seed: u64) -> (OracleVerdict, OracleVerdict) {
    net.enable_audit_with_interval(AUDIT_INTERVAL);
    let result = burst_net(
        net,
        &TrafficSpec::adversarial(1),
        BURST_DEPTH,
        seed,
        RunConfig::default(),
    );
    // `burst_net` only attaches the report when `ofar-core` itself is
    // built with auditing; this harness enables the *engine* auditor
    // directly, so pull the report off the network.
    let report = result
        .audit
        .or_else(|| net.take_audit_report())
        .unwrap_or_default();
    let audit = audit_verdict(report);
    let watchdog = match result.stall {
        None => OracleVerdict::Pass,
        Some(stall) => OracleVerdict::Fail {
            witness: stall_witness(&stall, result.delivered),
        },
    };
    (audit, watchdog)
}

/// Verdict of the runtime auditor from its report.
fn audit_verdict(report: ofar_engine::AuditReport) -> OracleVerdict {
    if report.is_clean() {
        OracleVerdict::Pass
    } else {
        OracleVerdict::Fail {
            witness: format!(
                "{} violation(s); first: {}",
                report.total_violations(),
                report
                    .violations
                    .first()
                    .map(|v| v.to_string())
                    .unwrap_or_default()
            ),
        }
    }
}

/// The sustained-overload dynamic stage for the throttle seam: open-loop
/// adversarial injection at [`OVERLOAD_OFFERED`] for [`OVERLOAD_CYCLES`]
/// with the deep auditor enabled, and a per-window delivery-rate
/// watchdog instead of the burst runner's zero-drain triggers. Returns
/// `(audit, rate-watchdog)` verdicts.
fn overload_verdicts<P: Policy>(net: &mut Network<P>, seed: u64) -> (OracleVerdict, OracleVerdict) {
    net.enable_audit_with_interval(AUDIT_INTERVAL);
    let topo = *net.fabric().topo();
    let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(1), seed.wrapping_add(1));
    let mut bern = Bernoulli::new(
        OVERLOAD_OFFERED,
        net.cfg().packet_size,
        seed.wrapping_add(2),
    );
    let nodes = net.num_nodes();
    let mut window_start = 0u64;
    let mut watchdog = OracleVerdict::Pass;
    for cycle in 1..=OVERLOAD_CYCLES {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
        if cycle % OVERLOAD_WINDOW == 0 {
            let delivered = net.stats().delivered_packets;
            let window = delivered - window_start;
            window_start = delivered;
            // The first window is pipeline fill; every later one must
            // sustain the floor.
            if cycle > OVERLOAD_WINDOW && window < OVERLOAD_TOTAL_FLOOR {
                let s = net.stats();
                watchdog = OracleVerdict::Fail {
                    witness: format!(
                        "overload rate-watchdog: {window} delivered in window ending at cycle \
                         {cycle} (floor {OVERLOAD_TOTAL_FLOOR}); backlog {}",
                        s.generated_packets - s.delivered_packets
                    ),
                };
                break;
            }
        }
    }
    let audit = audit_verdict(net.take_audit_report().unwrap_or_default());
    (audit, watchdog)
}

/// The admission watchdog for the escape-ring guard: a synchronized
/// closed-loop wave ([`WAVE_DEPTH`] adversarial packets per node, all
/// generated at cycle 0) slams every blocked head into the ring at
/// once, and the ring entries admitted within the guard's grace window
/// ([`WAVE_OBSERVE`] cycles) are counted against [`WAVE_ENTRY_CAP`].
///
/// This is the only window in which the guard is *observable*: a
/// guard-off OFAR cannot deadlock (the bubble certificate holds either
/// way) and under sustained overload every head eventually out-waits
/// the grace bound, so burst watchdogs and steady-state throughput
/// floors both pass the mutant. What the guard changes is the admission
/// *transient* — deferring entry while the ring senses saturated, so a
/// congestion spike cannot convert the escape resource into a sink in
/// the first place. The wave makes that transient deterministic
/// (closed-loop, seed-invariant up to destination choice) and the entry
/// count makes it checkable. The run then continues to
/// [`OVERLOAD_CYCLES`] so the deep auditor sweeps the drain as well.
fn wave_admission_verdicts<P: Policy>(
    net: &mut Network<P>,
    seed: u64,
) -> (OracleVerdict, OracleVerdict) {
    net.enable_audit_with_interval(AUDIT_INTERVAL);
    let topo = *net.fabric().topo();
    let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(1), seed.wrapping_add(1));
    for node in 0..net.num_nodes() {
        for _ in 0..WAVE_DEPTH {
            let dst = gen.destination(node.into());
            net.generate(node.into(), dst);
        }
    }
    while net.now() < WAVE_OBSERVE {
        net.step();
    }
    let entries = net.stats().ring_entries;
    let watchdog = if entries > WAVE_ENTRY_CAP {
        OracleVerdict::Fail {
            witness: format!(
                "admission watchdog: {entries} ring entries within {WAVE_OBSERVE} cycles of the \
                 wave (cap {WAVE_ENTRY_CAP}) — the ring is being admitted while sensed saturated"
            ),
        }
    } else {
        OracleVerdict::Pass
    };
    while net.now() < OVERLOAD_CYCLES
        && net.stats().delivered_packets < net.stats().generated_packets
    {
        net.step();
    }
    let audit = audit_verdict(net.take_audit_report().unwrap_or_default());
    (audit, watchdog)
}

/// The commutativity oracle for the two schedule-sensitivity seams
/// (`CreditInstant`, `EffectOrderFold`): execute the phase contract
/// under permuted shard orders and fail on the bisected divergence.
///
/// These mutants are invisible to every other dynamic oracle by
/// construction — conservation holds, progress holds, and the
/// identity-schedule run is bit-identical to the pristine engine — so
/// the audited burst is not run at all: a `Pass` from it would say
/// nothing. The certifier drives the smoke sweep's ADV+1 cell (high
/// load keeps credits scarce, so returned credits race upstream
/// allocation turns every few cycles) under the four canonical
/// adversarial schedules.
fn race_verdict(op: MutationOp, kind: MechanismKind, cfg: &SimConfig, seed: u64) -> OracleVerdict {
    let rc = RaceConfig {
        seed,
        ..RaceConfig::smoke()
    };
    let cfg = *cfg;
    let topo = Dragonfly::new(cfg.params);
    let mutation = engine_mutation(op);
    let build = move || {
        let mut net = Network::new(cfg, kind.build(&cfg, rc.seed));
        net.set_engine_mutation(Some(mutation));
        let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(1), rc.seed + 1);
        let mut bern = Bernoulli::new(0.7, cfg.packet_size, rc.seed + 2);
        let nodes = net.num_nodes();
        let inject: InjectFn<ofar_routing::Mechanism> = Box::new(move |net, _cycle| {
            bern.cycle(nodes, |src| {
                let dst = gen.destination(src);
                net.generate(src, dst);
            });
        });
        (net, inject)
    };
    let schedules = ofar_engine::ShardSchedule::adversaries(rc.schedules);
    match race::certify(build, &schedules, rc.cycles, rc.epoch) {
        Ok(CertifyOutcome::Commutes) => OracleVerdict::Pass,
        Ok(CertifyOutcome::Diverges(d)) => OracleVerdict::Fail {
            witness: Witness::from_divergence(kind.name(), "adv+1", &d, &[]).to_string(),
        },
        Err(e) => OracleVerdict::Fail {
            witness: format!("race certifier internal error: {e}"),
        },
    }
}

/// Compact witness for a watchdog diagnosis (the raw `StallKind` drags
/// whole router lists along).
fn stall_witness(stall: &StallKind, delivered: u64) -> String {
    match stall {
        StallKind::Partition { unreachable_pairs } => format!(
            "partition: {} unreachable pairs, {delivered} delivered",
            unreachable_pairs.len()
        ),
        StallKind::RetransmissionStorm { retransmits, .. } => {
            format!("retransmission storm: {retransmits} retransmits, {delivered} delivered")
        }
        StallKind::Deadlock { stalled_routers } => format!(
            "deadlock: {} stalled routers, {delivered} delivered",
            stalled_routers.len()
        ),
        StallKind::Livelock { stalled_routers } => format!(
            "livelock: {} stalled routers, {delivered} delivered",
            stalled_routers.len()
        ),
        StallKind::Saturation { backlog, .. } => {
            format!("saturation: {backlog} backlog, {delivered} delivered")
        }
    }
}

/// Run one `(operator × mechanism)` mutant through its oracles.
///
/// `cfg` is the *base* configuration (e.g. [`SimConfig::paper`]); it is
/// adapted to the mechanism here. The seed only affects the dynamic
/// burst — the static oracles enumerate instead of sampling.
pub fn run_mutant(
    op: MutationOp,
    kind: MechanismKind,
    cfg: &SimConfig,
    seed: u64,
) -> MutantOutcome {
    assert!(op.applies_to(kind));
    let cfg = kind.adapt_config(*cfg);
    let rank = RankingKind::for_mechanism(kind);
    let mut verdicts = Vec::new();
    match op.category() {
        OpCategory::Config => {
            let bad = mutate_config(op, &cfg);
            let cdg = match certify(&bad, kind) {
                Ok(_) => OracleVerdict::Pass,
                Err(e) => OracleVerdict::Fail {
                    witness: e.to_string(),
                },
            };
            verdicts.push((OracleKind::Cdg, cdg));
        }
        OpCategory::Declaration => {
            let bad = mutate_decl(op, &kind.dependency_decl(&cfg));
            let cdg = match certify_decl(&cfg, &bad) {
                Ok(_) => OracleVerdict::Pass,
                Err(e) => OracleVerdict::Fail {
                    witness: e.to_string(),
                },
            };
            verdicts.push((OracleKind::Cdg, cdg));
            let conf = match conformance_with(&cfg, kind.build(&cfg, 0), bad, rank) {
                Ok(_) => OracleVerdict::Pass,
                Err(e) => OracleVerdict::Fail {
                    witness: e.to_string(),
                },
            };
            verdicts.push((OracleKind::Conformance, conf));
        }
        OpCategory::Policy => {
            // The admission-guard defect is only observable when the
            // congestion-management layer that owns the guard is
            // actually on; the other policy mutants run the plain
            // configuration their mechanisms ship with.
            let cfg = if op == MutationOp::RingAdmitAlways {
                cfg.with_cm()
            } else {
                cfg
            };
            let decl = kind.dependency_decl(&cfg);
            let conf =
                match conformance_with(&cfg, MutantPolicy::new(op, kind, &cfg, 0), decl, rank) {
                    Ok(_) => OracleVerdict::Pass,
                    Err(e) => OracleVerdict::Fail {
                        witness: e.to_string(),
                    },
                };
            verdicts.push((OracleKind::Conformance, conf));
            let mut net = Network::new(cfg, MutantPolicy::new(op, kind, &cfg, seed));
            let (audit, watchdog) = if op == MutationOp::RingAdmitAlways {
                // Guard-off OFAR is deadlock-free (the bubble holds), so
                // the closed-loop burst cannot kill it; the wave
                // admission watchdog can.
                wave_admission_verdicts(&mut net, seed)
            } else {
                dynamic_verdicts(&mut net, seed)
            };
            verdicts.push((OracleKind::Audit, audit));
            verdicts.push((OracleKind::Watchdog, watchdog));
        }
        OpCategory::Engine => {
            // The schedule-sensitivity seams go to the commutativity
            // certifier alone (see `race_verdict` for why the audited
            // burst is skipped).
            if matches!(
                op,
                MutationOp::EngineCreditInstant | MutationOp::EngineEffectOrderFold
            ) {
                verdicts.push((OracleKind::Race, race_verdict(op, kind, &cfg, seed)));
                return MutantOutcome {
                    op,
                    mech: kind,
                    verdicts,
                };
            }
            // The throttle-bypass seam is dead code unless the token
            // bucket is live and actually runs dry: congestion
            // management on, with a sensing target low enough that the
            // adversarial burst throttles routers within a few EWMA
            // steps. Once a bucket is short, the bypassed injection
            // still pays full price into `cm_tokens_consumed` and the
            // token law breaks at the next deep audit.
            let cfg = if op == MutationOp::EngineThrottleBypass {
                let mut c = cfg.with_cm();
                c.cm_target_occupancy = 0.05;
                c.cm_hysteresis = 0.02;
                c.cm_min_rate = 0.05;
                c
            } else {
                cfg
            };
            // The bubble-skip defect only bites when ring entries are
            // actually attempted against depleted escape credits, so
            // that mutant gets the most hostile tuning the real OFAR
            // code allows: zero ring patience (every blocked head asks
            // for the ring at once) and a misroute threshold that
            // admits nothing (blocked heads cannot dodge sideways, so
            // the ring is the only relief valve). The default tuning
            // misroutes around congestion and never enters the ring at
            // this scale, leaving the seam unexercised.
            let policy = if op == MutationOp::EngineRingBubbleSkip && kind.needs_ring() {
                kind.build_tuned(
                    &cfg,
                    seed,
                    Some(ofar_routing::OfarConfig {
                        ring_patience: 0,
                        threshold: ofar_routing::MisrouteThreshold::Static {
                            th_min: 0.0,
                            th_nonmin: -1.0,
                        },
                        ..ofar_routing::OfarConfig::base()
                    }),
                    None,
                )
            } else {
                kind.build(&cfg, seed)
            };
            let mut net = Network::new(cfg, policy);
            net.set_engine_mutation(Some(engine_mutation(op)));
            // The token law only has something to say while buckets run
            // dry, which a drained burst stops exercising after a few
            // hundred cycles — the throttle seam gets the sustained
            // stage instead.
            let (audit, watchdog) = if op == MutationOp::EngineThrottleBypass {
                overload_verdicts(&mut net, seed)
            } else {
                dynamic_verdicts(&mut net, seed)
            };
            verdicts.push((OracleKind::Audit, audit));
            verdicts.push((OracleKind::Watchdog, watchdog));
        }
        OpCategory::Source => {
            verdicts.push((OracleKind::Lint, crate::lint_oracle::lint_verdict(op)));
        }
    }
    MutantOutcome {
        op,
        mech: kind,
        verdicts,
    }
}

/// Map an engine-category operator onto the engine's fault seam.
fn engine_mutation(op: MutationOp) -> EngineMutation {
    match op {
        MutationOp::EngineCreditLeak => EngineMutation::CreditLeak {
            period: ENGINE_PERIOD,
        },
        MutationOp::EngineCreditDouble => EngineMutation::CreditDouble {
            period: ENGINE_PERIOD,
        },
        MutationOp::EngineEscapeVcSkew => EngineMutation::EscapeVcSkew {
            period: ENGINE_PERIOD,
        },
        MutationOp::EngineRingBubbleSkip => EngineMutation::RingBubbleSkip,
        MutationOp::EngineThrottleBypass => EngineMutation::ThrottleBypass,
        MutationOp::EngineCreditInstant => EngineMutation::CreditInstant,
        MutationOp::EngineEffectOrderFold => EngineMutation::EffectOrderFold,
        _ => unreachable!("{} is not an engine operator", op.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_mutants_are_killed_by_the_cdg_oracle() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(MutationOp::CfgNoRing, MechanismKind::Ofar, &cfg, 1);
        let (oracle, witness) = out.killed_by().expect("ring-less OFAR must be refused");
        assert_eq!(oracle, OracleKind::Cdg);
        assert!(!witness.is_empty());
    }

    #[test]
    fn throttle_bypass_dies_in_the_token_law() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(
            MutationOp::EngineThrottleBypass,
            MechanismKind::Ofar,
            &cfg,
            7,
        );
        let (oracle, witness) = out.killed_by().expect("bypassed bucket must be caught");
        assert_eq!(oracle, OracleKind::Audit);
        assert!(witness.contains("throttle token law"), "witness: {witness}");
    }

    #[test]
    fn ring_admit_always_dies_in_the_admission_watchdog() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(MutationOp::RingAdmitAlways, MechanismKind::Ofar, &cfg, 7);
        let (oracle, witness) = out
            .killed_by()
            .expect("guard-off admissions must be caught");
        assert_eq!(oracle, OracleKind::Watchdog);
        assert!(witness.contains("admission watchdog"), "witness: {witness}");
    }

    #[test]
    fn the_guarded_twin_passes_the_admission_watchdog() {
        // Honesty anchor for the admission watchdog: the mutant's exact
        // ring-hungry tuning with the guard left *on* (what `Auto`
        // resolves to under CM) must clear the same wave cap — the
        // guard really is the only difference the oracle sees.
        use ofar_routing::{MisrouteThreshold, OfarConfig, RingGuard, RING_GUARD_DEFAULT};
        let cfg = MechanismKind::Ofar
            .adapt_config(SimConfig::paper(2))
            .with_cm();
        let twin = MechanismKind::Ofar.build_tuned(
            &cfg,
            7,
            Some(OfarConfig {
                ring_guard: RingGuard::Threshold(RING_GUARD_DEFAULT),
                ring_patience: 1,
                threshold: MisrouteThreshold::Static {
                    th_min: 0.0,
                    th_nonmin: -1.0,
                },
                ..OfarConfig::base()
            }),
            None,
        );
        let mut net = Network::new(cfg, twin);
        let (audit, watchdog) = wave_admission_verdicts(&mut net, 7);
        assert!(matches!(audit, OracleVerdict::Pass), "audit: {audit:?}");
        assert!(
            matches!(watchdog, OracleVerdict::Pass),
            "watchdog: {watchdog:?}"
        );
    }

    #[test]
    fn credit_instant_dies_in_the_race_certifier() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(
            MutationOp::EngineCreditInstant,
            MechanismKind::Ofar,
            &cfg,
            7,
        );
        // Only the race oracle ran: the seam is invisible to the
        // audit/watchdog pair by construction.
        assert_eq!(out.verdicts.len(), 1);
        let (oracle, witness) = out
            .killed_by()
            .expect("mid-phase cross-shard credit landing must be caught");
        assert_eq!(oracle, OracleKind::Race);
        assert!(
            witness.contains("diverges at cycle"),
            "witness must carry the bisected cycle: {witness}"
        );
    }

    #[test]
    fn effect_order_fold_dies_in_the_race_certifier() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(
            MutationOp::EngineEffectOrderFold,
            MechanismKind::Ofar,
            &cfg,
            7,
        );
        let (oracle, witness) = out
            .killed_by()
            .expect("order-sensitive fold must be caught");
        assert_eq!(oracle, OracleKind::Race);
        // The fold leaks through a serialized counter, so the witness
        // must attribute the divergence to the commit phase, not to any
        // parallel phase.
        assert!(
            witness.contains("effect_commit"),
            "witness must attribute the fold to the commit phase: {witness}"
        );
    }

    #[test]
    fn dropped_escape_drain_is_killed_statically() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(
            MutationOp::DeclDropEscapeDrain,
            MechanismKind::Ofar,
            &cfg,
            1,
        );
        assert_eq!(out.killed_by().expect("must be killed").0, OracleKind::Cdg);
    }
}
