//! Drive one mutant through the oracle stack and record per-oracle
//! verdicts.
//!
//! Which oracles run depends on the operator's category:
//!
//! * **Config** mutants go to the CDG certifier ([`ofar_verify::certify`])
//!   — a skewed configuration must be refused before cycle 0, so the
//!   other oracles never see it.
//! * **Declaration** mutants go to the CDG certifier over the mutated
//!   declaration ([`ofar_verify::certify_decl`]) *and* to the
//!   conformance checker with the *real* policy against that
//!   declaration — a declaration can be wrong in two directions
//!   (cyclic, or an under-approximation of the code) and the two
//!   oracles split that work.
//! * **Policy** mutants go to the conformance model checker against the
//!   real declaration, then through an audited adversarial burst
//!   (runtime auditor + progress watchdog).
//! * **Engine** mutants bypass the static stack entirely (the routing
//!   code is untouched) and go straight to the audited burst.
//!
//! Every oracle that runs gets a recorded verdict, even after an
//! earlier oracle already killed the mutant — the matrix wants to know
//! *all* the detectors a defect trips, not just the first.

use crate::operator::{MutationOp, OpCategory};
use crate::MutantPolicy;
use ofar_core::{burst_net, RunConfig, StallKind};
use ofar_engine::{EngineMutation, Network, Policy, RingMode, SimConfig};
use ofar_routing::{ClassEdge, ClassId, DependencyDecl, EdgeWhy, MechanismDeps, MechanismKind};
use ofar_traffic::TrafficSpec;
use ofar_verify::{
    certify, certify_decl, conformance_with, OracleKind, OracleVerdict, RankingKind,
};

/// Deep-audit interval for mutation bursts: tight enough that a leaked
/// or doubled credit is caught within a handful of cycles of the seam
/// firing, loose enough that an h=2 burst stays fast.
const AUDIT_INTERVAL: u64 = 8;

/// Packets per node in the dynamic burst. Adversarial traffic at this
/// depth saturates the global links at h=2 without making a single
/// (mutant × oracle) run the matrix's critical path.
const BURST_DEPTH: usize = 8;

/// Every credit-seam mutation fires on every tick: the engine operators
/// model a *systematically* wrong flow-control implementation, not a
/// transient upset (PR-level fault injection already covers those).
const ENGINE_PERIOD: u32 = 1;

/// The verdicts of one mutant against every oracle that ran.
#[derive(Clone, Debug)]
pub struct MutantOutcome {
    /// The seeded operator.
    pub op: MutationOp,
    /// The host mechanism.
    pub mech: MechanismKind,
    /// Per-oracle verdicts, in stack order. Oracles that do not apply
    /// to the operator's category are absent.
    pub verdicts: Vec<(OracleKind, OracleVerdict)>,
}

impl MutantOutcome {
    /// The first oracle that killed the mutant, with its witness.
    pub fn killed_by(&self) -> Option<(OracleKind, &str)> {
        self.verdicts.iter().find_map(|(k, v)| match v {
            OracleVerdict::Fail { witness } => Some((*k, witness.as_str())),
            OracleVerdict::Pass => None,
        })
    }

    /// Whether the mutant survived the whole stack.
    pub fn survived(&self) -> bool {
        self.killed_by().is_none()
    }
}

/// Build the mutated configuration for a [`OpCategory::Config`]
/// operator from the mechanism-adapted base.
fn mutate_config(op: MutationOp, cfg: &SimConfig) -> SimConfig {
    let mut cfg = *cfg;
    match op {
        MutationOp::CfgShallowRingBuffer => cfg.buf_ring = cfg.packet_size,
        MutationOp::CfgNoRing => cfg.ring = RingMode::None,
        MutationOp::CfgFoldedLadder => {
            // The fold is the defect under test, not the ring: keep the
            // mechanism-adapted ring mode and only collapse the ladder.
            let folded = SimConfig::reduced_vcs(cfg.params.h);
            cfg.vcs_local = folded.vcs_local;
            cfg.vcs_global = folded.vcs_global;
            cfg.vcs_injection = folded.vcs_injection;
        }
        _ => unreachable!("{} is not a config operator", op.name()),
    }
    cfg
}

/// Build the mutated declaration for a [`OpCategory::Declaration`]
/// operator from the mechanism's real declaration.
fn mutate_decl(op: MutationOp, decl: &MechanismDeps) -> MechanismDeps {
    let mut decl = decl.clone();
    match op {
        MutationOp::DeclDropEscapeDrain => {
            decl.edges
                .retain(|e| !(e.to == ClassId::Escape && e.from != ClassId::Escape));
        }
        MutationOp::DeclFlattenLadder => {
            for e in &mut decl.edges {
                if let ClassId::Local { .. } = e.to {
                    e.to = ClassId::Local { vc: 0 };
                }
            }
            decl.edges.sort_unstable_by_key(|a| (a.from, a.to));
            decl.edges.dedup_by_key(|e| (e.from, e.to));
        }
        MutationOp::DeclBackEdge => {
            let top = decl
                .edges
                .iter()
                .filter_map(|e| match e.to {
                    ClassId::Local { vc } => Some(vc),
                    _ => None,
                })
                .max()
                .unwrap_or(0);
            decl.edges.push(ClassEdge {
                from: ClassId::Local { vc: top },
                to: ClassId::Local { vc: 0 },
                why: EdgeWhy::MisrouteLocal,
            });
        }
        MutationOp::DeclDropInject => {
            decl.edges
                .retain(|e| !matches!(e.from, ClassId::Inject { .. }));
        }
        _ => unreachable!("{} is not a declaration operator", op.name()),
    }
    decl
}

/// Run the two dynamic oracles: an audited adversarial burst over a
/// caller-prepared network. Returns `(audit, watchdog)` verdicts.
fn dynamic_verdicts<P: Policy>(net: &mut Network<P>, seed: u64) -> (OracleVerdict, OracleVerdict) {
    net.enable_audit_with_interval(AUDIT_INTERVAL);
    let result = burst_net(
        net,
        &TrafficSpec::adversarial(1),
        BURST_DEPTH,
        seed,
        RunConfig::default(),
    );
    // `burst_net` only attaches the report when `ofar-core` itself is
    // built with auditing; this harness enables the *engine* auditor
    // directly, so pull the report off the network.
    let report = result
        .audit
        .or_else(|| net.take_audit_report())
        .unwrap_or_default();
    let audit = if report.is_clean() {
        OracleVerdict::Pass
    } else {
        OracleVerdict::Fail {
            witness: format!(
                "{} violation(s); first: {}",
                report.total_violations(),
                report
                    .violations
                    .first()
                    .map(|v| v.to_string())
                    .unwrap_or_default()
            ),
        }
    };
    let watchdog = match result.stall {
        None => OracleVerdict::Pass,
        Some(stall) => OracleVerdict::Fail {
            witness: stall_witness(&stall, result.delivered),
        },
    };
    (audit, watchdog)
}

/// Compact witness for a watchdog diagnosis (the raw `StallKind` drags
/// whole router lists along).
fn stall_witness(stall: &StallKind, delivered: u64) -> String {
    match stall {
        StallKind::Partition { unreachable_pairs } => format!(
            "partition: {} unreachable pairs, {delivered} delivered",
            unreachable_pairs.len()
        ),
        StallKind::RetransmissionStorm { retransmits, .. } => {
            format!("retransmission storm: {retransmits} retransmits, {delivered} delivered")
        }
        StallKind::Deadlock { stalled_routers } => format!(
            "deadlock: {} stalled routers, {delivered} delivered",
            stalled_routers.len()
        ),
        StallKind::Livelock { stalled_routers } => format!(
            "livelock: {} stalled routers, {delivered} delivered",
            stalled_routers.len()
        ),
    }
}

/// Run one `(operator × mechanism)` mutant through its oracles.
///
/// `cfg` is the *base* configuration (e.g. [`SimConfig::paper`]); it is
/// adapted to the mechanism here. The seed only affects the dynamic
/// burst — the static oracles enumerate instead of sampling.
pub fn run_mutant(
    op: MutationOp,
    kind: MechanismKind,
    cfg: &SimConfig,
    seed: u64,
) -> MutantOutcome {
    assert!(op.applies_to(kind));
    let cfg = kind.adapt_config(*cfg);
    let rank = RankingKind::for_mechanism(kind);
    let mut verdicts = Vec::new();
    match op.category() {
        OpCategory::Config => {
            let bad = mutate_config(op, &cfg);
            let cdg = match certify(&bad, kind) {
                Ok(_) => OracleVerdict::Pass,
                Err(e) => OracleVerdict::Fail {
                    witness: e.to_string(),
                },
            };
            verdicts.push((OracleKind::Cdg, cdg));
        }
        OpCategory::Declaration => {
            let bad = mutate_decl(op, &kind.dependency_decl(&cfg));
            let cdg = match certify_decl(&cfg, &bad) {
                Ok(_) => OracleVerdict::Pass,
                Err(e) => OracleVerdict::Fail {
                    witness: e.to_string(),
                },
            };
            verdicts.push((OracleKind::Cdg, cdg));
            let conf = match conformance_with(&cfg, kind.build(&cfg, 0), bad, rank) {
                Ok(_) => OracleVerdict::Pass,
                Err(e) => OracleVerdict::Fail {
                    witness: e.to_string(),
                },
            };
            verdicts.push((OracleKind::Conformance, conf));
        }
        OpCategory::Policy => {
            let decl = kind.dependency_decl(&cfg);
            let conf =
                match conformance_with(&cfg, MutantPolicy::new(op, kind, &cfg, 0), decl, rank) {
                    Ok(_) => OracleVerdict::Pass,
                    Err(e) => OracleVerdict::Fail {
                        witness: e.to_string(),
                    },
                };
            verdicts.push((OracleKind::Conformance, conf));
            let mut net = Network::new(cfg, MutantPolicy::new(op, kind, &cfg, seed));
            let (audit, watchdog) = dynamic_verdicts(&mut net, seed);
            verdicts.push((OracleKind::Audit, audit));
            verdicts.push((OracleKind::Watchdog, watchdog));
        }
        OpCategory::Engine => {
            // The bubble-skip defect only bites when ring entries are
            // actually attempted against depleted escape credits, so
            // that mutant gets the most hostile tuning the real OFAR
            // code allows: zero ring patience (every blocked head asks
            // for the ring at once) and a misroute threshold that
            // admits nothing (blocked heads cannot dodge sideways, so
            // the ring is the only relief valve). The default tuning
            // misroutes around congestion and never enters the ring at
            // this scale, leaving the seam unexercised.
            let policy = if op == MutationOp::EngineRingBubbleSkip && kind.needs_ring() {
                kind.build_tuned(
                    &cfg,
                    seed,
                    Some(ofar_routing::OfarConfig {
                        ring_patience: 0,
                        threshold: ofar_routing::MisrouteThreshold::Static {
                            th_min: 0.0,
                            th_nonmin: -1.0,
                        },
                        ..ofar_routing::OfarConfig::base()
                    }),
                    None,
                )
            } else {
                kind.build(&cfg, seed)
            };
            let mut net = Network::new(cfg, policy);
            net.set_engine_mutation(Some(engine_mutation(op)));
            let (audit, watchdog) = dynamic_verdicts(&mut net, seed);
            verdicts.push((OracleKind::Audit, audit));
            verdicts.push((OracleKind::Watchdog, watchdog));
        }
    }
    MutantOutcome {
        op,
        mech: kind,
        verdicts,
    }
}

/// Map an engine-category operator onto the engine's fault seam.
fn engine_mutation(op: MutationOp) -> EngineMutation {
    match op {
        MutationOp::EngineCreditLeak => EngineMutation::CreditLeak {
            period: ENGINE_PERIOD,
        },
        MutationOp::EngineCreditDouble => EngineMutation::CreditDouble {
            period: ENGINE_PERIOD,
        },
        MutationOp::EngineEscapeVcSkew => EngineMutation::EscapeVcSkew {
            period: ENGINE_PERIOD,
        },
        MutationOp::EngineRingBubbleSkip => EngineMutation::RingBubbleSkip,
        _ => unreachable!("{} is not an engine operator", op.name()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_mutants_are_killed_by_the_cdg_oracle() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(MutationOp::CfgNoRing, MechanismKind::Ofar, &cfg, 1);
        let (oracle, witness) = out.killed_by().expect("ring-less OFAR must be refused");
        assert_eq!(oracle, OracleKind::Cdg);
        assert!(!witness.is_empty());
    }

    #[test]
    fn dropped_escape_drain_is_killed_statically() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(
            MutationOp::DeclDropEscapeDrain,
            MechanismKind::Ofar,
            &cfg,
            1,
        );
        assert_eq!(out.killed_by().expect("must be killed").0, OracleKind::Cdg);
    }
}
