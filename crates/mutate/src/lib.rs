//! Mutation-driven verification adequacy for the OFAR proof stack.
//!
//! The repo carries five independent correctness oracles — the
//! phase-discipline lint analyzer, the CDG deadlock verifier, the
//! routing-conformance model checker, the runtime invariant auditor
//! and the burst progress watchdog. This
//! crate measures whether that stack would actually *notice* the bugs
//! it exists to catch: it derives defective variants of the real
//! routing mechanisms and the engine's flow control (one semantic
//! fault per mutant, from the [`MutationOp`] catalog), runs every
//! applicable `(mutant × mechanism)` pair through the stack, and emits
//! a kill matrix.
//!
//! A mutant is **killed** when at least one oracle rejects it with a
//! structured witness, and **survives** otherwise. Survivors are not
//! failures of this harness — they are *measured gaps* in the proof
//! stack, named and analyzed in DESIGN.md §11. The measured kills are
//! baked into [`matrix::covered`]; CI re-runs the matrix and fails if
//! a previously-killed pair starts surviving.
//!
//! Entry points: [`KillMatrix::run`] for the whole matrix,
//! [`run_mutant`] for one pair, [`MutantPolicy`] to build a single
//! defective policy for ad-hoc experiments.

#![warn(missing_docs)]

mod lint_oracle;
mod matrix;
mod mutant;
mod operator;
mod oracle;

pub use matrix::{covered, pairs, KillMatrix, MECHANISMS};
pub use mutant::MutantPolicy;
pub use operator::{MutationOp, OpCategory};
pub use oracle::{run_mutant, MutantOutcome};
