//! The static lint oracle: the phase-discipline analyzer as a mutant
//! killer.
//!
//! [`OpCategory::Source`](crate::OpCategory::Source) mutants are
//! textual transforms of the engine's own `network.rs` — defects a
//! developer could introduce while editing the step loop, invisible to
//! every dynamic oracle because the single-threaded engine simulates
//! them identically. The seeded transform moves the credit return
//! across the phase boundary: the deferred `Effect::Credit` push in
//! `execute_grant` (parallel `route` phase, applied by
//! `commit_effects` in the serial commit phase) becomes a direct write
//! into the *upstream* router's credit queue — exactly the cross-shard
//! write the checked-in parallelization contract forbids. The oracle
//! re-runs `ofar-analyze` over the mutated workspace text and the
//! mutant is killed when an open R-family finding lands in the mutated
//! file.
//!
//! The pristine text being replaced is pinned byte-exact: when a
//! refactor of `execute_grant` breaks the match, the oracle panics
//! instead of silently analyzing an unmutated workspace and reporting
//! a survivor.

use crate::operator::MutationOp;
use ofar_analyze::{analyze_sources, collect_sources, LintConfig};
use ofar_verify::OracleVerdict;
use std::fmt::Write as _;
use std::path::Path;

/// Workspace-relative path of the mutated file.
const TARGET: &str = "crates/engine/src/network.rs";

/// The deferred credit push in `execute_grant`, byte-exact with the
/// pristine source.
const CREDIT_PUSH: &str = "            self.effects.push(Effect::Credit {
                router: desc.up_router,
                port: desc.up_port,
                vc: vc as u8,
                phits: size,
                at: now + u64::from(desc.latency),
            });";

/// The hoisted replacement: a direct foreign-shard write from the
/// parallel phase. Still a valid program with identical single-threaded
/// behavior (the ready-at stamp travels in the queue entry), which is
/// the point — only the analyzer can object.
const CREDIT_HOIST: &str = "            self.routers[desc.up_router as usize].outputs
                [desc.up_port as usize]
                .credit_events
                .push_back((now + u64::from(desc.latency), vc as u8, size));";

/// Run the phase-discipline analyzer against the workspace with `op`'s
/// textual transform applied to the engine source. Kills are open
/// R-family findings in the mutated file.
pub fn lint_verdict(op: MutationOp) -> OracleVerdict {
    // The harness always runs from a checkout of this workspace (tests,
    // CI, the `mutants` bench binary), so the compile-time manifest dir
    // locates the sources.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut sources = collect_sources(&root).expect("workspace sources readable");
    let target = sources
        .iter_mut()
        .find(|s| s.path == TARGET)
        .unwrap_or_else(|| panic!("{TARGET} missing from workspace sources"));
    match op {
        MutationOp::SourceCreditPhaseHoist => {
            assert!(
                target.text.contains(CREDIT_PUSH),
                "the deferred credit push in execute_grant no longer matches the \
                 lint oracle's pinned text — update lint_oracle::CREDIT_PUSH"
            );
            target.text = target.text.replace(CREDIT_PUSH, CREDIT_HOIST);
        }
        _ => unreachable!("{} is not a source operator", op.name()),
    }
    let analysis = analyze_sources(&sources, &LintConfig::default(), None);
    let hits: Vec<_> = analysis
        .open()
        .filter(|f| f.file == TARGET && f.rule.starts_with('R'))
        .collect();
    if hits.is_empty() {
        OracleVerdict::Pass
    } else {
        let mut witness = format!("{} phase-discipline finding(s); first: ", hits.len());
        let f = hits[0];
        let _ = write!(witness, "{}:{} [{}] {}", f.file, f.line, f.rule, f.message);
        OracleVerdict::Fail { witness }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::run_mutant;
    use ofar_engine::SimConfig;
    use ofar_routing::MechanismKind;
    use ofar_verify::OracleKind;

    /// Honesty anchor: the pristine engine source carries no open
    /// R-family finding, so any kill below is the transform's doing.
    #[test]
    fn pristine_engine_is_lint_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let sources = collect_sources(&root).expect("workspace sources");
        let a = analyze_sources(&sources, &LintConfig::default(), None);
        let open: Vec<_> = a
            .open()
            .filter(|f| f.file == TARGET && f.rule.starts_with('R'))
            .map(|f| format!("{}:{} [{}] {}", f.file, f.line, f.rule, f.message))
            .collect();
        assert!(
            open.is_empty(),
            "pristine engine has open R findings: {open:?}"
        );
    }

    /// The adequacy criterion: the hoisted credit write is reported by
    /// the analyzer as a cross-shard write in a parallel phase.
    #[test]
    fn credit_phase_hoist_is_killed_by_the_lint_oracle() {
        let cfg = SimConfig::paper(2);
        let out = run_mutant(
            MutationOp::SourceCreditPhaseHoist,
            MechanismKind::Ofar,
            &cfg,
            1,
        );
        let (oracle, witness) = out
            .killed_by()
            .expect("the hoisted credit write must be caught");
        assert_eq!(oracle, OracleKind::Lint);
        assert!(witness.contains("R001"), "witness: {witness}");
        assert!(witness.contains("cross-shard write"), "witness: {witness}");
    }
}
