//! The per-grant ring-entry bubble invariant, end to end.
//!
//! The mutation campaign found that the deep `BubbleLost` check (free
//! space summed over the whole ring < one packet) cannot see a *single*
//! eroded admission: at h=2 the ring drains faster than a burst can
//! wedge it, so `engine-ring-bubble-skip` survived the original stack.
//! The fix is the fast `RingEnterNoBubble` check in `execute_grant`,
//! which re-derives the §IV-C two-packet precondition on every
//! `RingEnter` grant. These tests pin both directions of that check
//! under the same ring-hostile OFAR tuning the oracle harness uses
//! (zero ring patience, misroute threshold admitting nothing — the ring
//! is the only relief valve for a blocked head).

use ofar_core::{burst_net, RunConfig};
use ofar_engine::{AuditViolation, EngineMutation, Network, SimConfig};
use ofar_routing::{MechanismKind, MisrouteThreshold, OfarConfig};
use ofar_traffic::TrafficSpec;

/// OFAR with the ring as the only relief valve, over the
/// mechanism-adapted paper config at h=2.
fn ring_hostile_net(mutation: Option<EngineMutation>) -> Network<impl ofar_engine::Policy> {
    let kind = MechanismKind::Ofar;
    let cfg = kind.adapt_config(SimConfig::paper(2));
    let policy = kind.build_tuned(
        &cfg,
        7,
        Some(OfarConfig {
            ring_patience: 0,
            threshold: MisrouteThreshold::Static {
                th_min: 0.0,
                th_nonmin: -1.0,
            },
            ..OfarConfig::base()
        }),
        None,
    );
    let mut net = Network::new(cfg, policy);
    net.set_engine_mutation(mutation);
    net.enable_audit_with_interval(8);
    net
}

#[test]
fn eroded_bubble_is_caught_at_the_first_bad_admission() {
    let mut net = ring_hostile_net(Some(EngineMutation::RingBubbleSkip));
    let result = burst_net(
        &mut net,
        &TrafficSpec::adversarial(1),
        8,
        7,
        RunConfig::default(),
    );
    assert!(
        result.stats.ring_entries > 0,
        "workload must exercise the ring for the seam to matter"
    );
    // When `ofar-core/audit` is on, `burst_net` already drained the
    // report into the result; otherwise it is still in the network.
    let report = result
        .audit
        .or_else(|| net.take_audit_report())
        .expect("audit armed");
    assert!(!report.is_clean(), "eroded admissions must be reported");
    let v = report
        .violations
        .iter()
        .find_map(|v| match v {
            AuditViolation::RingEnterNoBubble {
                credits, required, ..
            } => Some((*credits, *required)),
            _ => None,
        })
        .expect("the violation must be the per-grant bubble check");
    let size = 8; // SimConfig::paper packet_size
    assert_eq!(v.1, 2 * size, "required space is the two-packet bubble");
    assert!(v.0 < 2 * size, "witnessed credits must actually violate it");
}

#[test]
fn healthy_engine_enters_the_ring_without_violations() {
    let mut net = ring_hostile_net(None);
    let result = burst_net(
        &mut net,
        &TrafficSpec::adversarial(1),
        8,
        7,
        RunConfig::default(),
    );
    assert!(
        result.stats.ring_entries > 0,
        "the hostile tuning must still drive real ring entries"
    );
    let report = result
        .audit
        .or_else(|| net.take_audit_report())
        .expect("audit armed");
    assert!(
        report.is_clean(),
        "unmutated flow control must pass the per-grant check: {report}"
    );
}
