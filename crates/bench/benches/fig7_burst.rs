//! Fig. 7 bench: burst-consumption comparison at smoke scale plus the
//! burst-runner timing. Full-scale data:
//! `cargo run --release -p ofar-bench --bin fig7`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", ofar_core::experiments::fig7(&Scale::quick()));
    let cfg = SimConfig::paper(2);
    let mut g = c.benchmark_group("fig7_burst");
    g.sample_size(10);
    for kind in [MechanismKind::Pb, MechanismKind::Ofar, MechanismKind::OfarL] {
        g.bench_function(format!("{kind}_MIX2_10ppn"), |b| {
            b.iter(|| burst(cfg, kind, &TrafficSpec::mix2(2), 10, 9))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
