//! Engine microbenchmarks: raw simulation speed (cycles/second) of the
//! router model under different occupancy regimes, plus topology and
//! ring-construction costs. These guard the simulator's performance —
//! the figure suite is built on millions of `Network::step` calls.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use ofar_core::prelude::*;
use ofar_core::routing::MinPolicy;
use ofar_core::topology::HamiltonianRing as Ring;

fn engine_steps(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_step");
    g.sample_size(10);
    for (label, load) in [("idle", 0.0f64), ("moderate", 0.3), ("saturated", 0.9)] {
        g.throughput(Throughput::Elements(500));
        g.bench_function(format!("h2_{label}_500cycles"), |b| {
            let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(2));
            b.iter_batched(
                || {
                    let mut net = Network::new(cfg, MechanismKind::Ofar.build(&cfg, 1));
                    // pre-warm occupancy
                    let topo = Dragonfly::new(cfg.params);
                    let mut gen = TrafficGen::new(&topo, TrafficSpec::uniform(), 2);
                    let mut bern = Bernoulli::new(load, cfg.packet_size, 3);
                    let nodes = net.num_nodes();
                    for _ in 0..300 {
                        bern.cycle(nodes, |s| {
                            let d = gen.destination(s);
                            net.generate(s, d);
                        });
                        net.step();
                    }
                    (net, gen, bern)
                },
                |(mut net, mut gen, mut bern)| {
                    let nodes = net.num_nodes();
                    for _ in 0..500 {
                        bern.cycle(nodes, |s| {
                            let d = gen.destination(s);
                            net.generate(s, d);
                        });
                        net.step();
                    }
                    net.stats().delivered_packets
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn construction(c: &mut Criterion) {
    let mut g = c.benchmark_group("construction");
    g.sample_size(10);
    g.bench_function("network_build_h4", |b| {
        let cfg = SimConfig::paper(4);
        b.iter(|| Network::new(cfg, MinPolicy::new(&cfg)))
    });
    g.bench_function("disjoint_rings_h6", |b| {
        let topo = Dragonfly::balanced(6);
        b.iter(|| Ring::embed_disjoint(&topo, 6))
    });
    g.finish();
}

criterion_group!(benches, engine_steps, construction);
criterion_main!(benches);
