//! Fig. 4 bench: ADV+2 series at smoke scale plus per-mechanism timing.
//! Full-scale data: `cargo run --release -p ofar-bench --bin fig4`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", ofar_core::experiments::fig4(&Scale::quick()));
    let cfg = SimConfig::paper(2);
    let opts = SteadyOpts {
        warmup: 300,
        measure: 700,
    };
    let mut g = c.benchmark_group("fig4_adv2");
    g.sample_size(10);
    for kind in [
        MechanismKind::Valiant,
        MechanismKind::Ofar,
        MechanismKind::OfarL,
    ] {
        g.bench_function(format!("{kind}_ADV2_0.3_1kcycles"), |b| {
            b.iter(|| steady_state(cfg, kind, &TrafficSpec::adversarial(2), 0.3, opts, 5))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
