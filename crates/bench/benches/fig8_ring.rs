//! Fig. 8 bench: physical vs embedded escape ring at smoke scale plus
//! per-model timing. Full-scale data:
//! `cargo run --release -p ofar-bench --bin fig8`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", ofar_core::experiments::fig8(&Scale::quick()));
    let opts = SteadyOpts {
        warmup: 300,
        measure: 700,
    };
    let mut g = c.benchmark_group("fig8_ring");
    g.sample_size(10);
    for ring in [RingMode::Physical, RingMode::Embedded] {
        let cfg = SimConfig::paper(2).with_ring(ring);
        g.bench_function(format!("OFAR_{ring:?}_ADV2_0.3"), |b| {
            b.iter(|| {
                steady_state(
                    cfg,
                    MechanismKind::Ofar,
                    &TrafficSpec::adversarial(2),
                    0.3,
                    opts,
                    5,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
