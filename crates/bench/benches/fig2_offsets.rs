//! Fig. 2b bench: regenerates the throughput-vs-offset series at smoke
//! scale and times the Valiant saturation measurement. Full-scale data:
//! `cargo run --release -p ofar-bench --bin fig2b`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn series() {
    let scale = Scale::quick();
    println!("{}", ofar_core::experiments::fig2b(&scale));
}

fn bench(c: &mut Criterion) {
    series();
    let cfg = SimConfig::paper(2);
    let opts = SteadyOpts {
        warmup: 300,
        measure: 700,
    };
    let mut g = c.benchmark_group("fig2b_offsets");
    g.sample_size(10);
    for offset in [1usize, 2] {
        g.bench_function(format!("VAL_ADV+{offset}_saturation_1kcycles"), |b| {
            b.iter(|| {
                steady_state(
                    cfg,
                    MechanismKind::Valiant,
                    &TrafficSpec::adversarial(offset),
                    1.0,
                    opts,
                    7,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
