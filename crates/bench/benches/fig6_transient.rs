//! Fig. 6 bench: transient latency series at smoke scale plus the
//! transient-runner timing. Full-scale data:
//! `cargo run --release -p ofar-bench --bin fig6`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn bench(c: &mut Criterion) {
    // The full transient table is long; print a compact summary of the
    // smoke-scale adaptation behaviour instead of all buckets.
    let scale = Scale::quick();
    let t = ofar_core::experiments::fig6(&scale);
    println!("== {} (every 500 cycles) ==", t.title);
    for r in t
        .rows
        .iter()
        .filter(|r| r[2].parse::<i64>().map(|c| c % 500 == 0).unwrap_or(false))
    {
        println!("{:>14} {:>7} {:>7} {:>9}", r[0], r[1], r[2], r[3]);
    }

    let cfg = SimConfig::paper(2);
    let opts = TransientOpts {
        warmup: 600,
        post: 500,
        pre_window: 200,
        bucket: 100,
        drain: 500,
    };
    let mut g = c.benchmark_group("fig6_transient");
    g.sample_size(10);
    for kind in [MechanismKind::Pb, MechanismKind::Ofar] {
        g.bench_function(format!("{kind}_UN_to_ADV2"), |b| {
            b.iter(|| {
                transient(
                    cfg,
                    kind,
                    &TrafficSpec::uniform(),
                    &TrafficSpec::adversarial(2),
                    0.14,
                    opts,
                    3,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
