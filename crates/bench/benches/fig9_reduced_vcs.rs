//! Fig. 9 bench: reduced-VC congestion study at smoke scale plus the
//! reduced-config timing. Full-scale data:
//! `cargo run --release -p ofar-bench --bin fig9`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", ofar_core::experiments::fig9(&Scale::quick()));
    let cfg = SimConfig::reduced_vcs(2);
    let opts = SteadyOpts {
        warmup: 300,
        measure: 700,
    };
    let mut g = c.benchmark_group("fig9_reduced_vcs");
    g.sample_size(10);
    for (label, spec) in [
        ("UN", TrafficSpec::uniform()),
        ("ADV2", TrafficSpec::adversarial(2)),
    ] {
        g.bench_function(format!("OFAR_reducedVC_{label}_0.5"), |b| {
            b.iter(|| steady_state(cfg, MechanismKind::Ofar, &spec, 0.5, opts, 5))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
