//! Fig. 5 bench (the headline result): ADV+h series at smoke scale plus
//! OFAR vs OFAR-L timing at the local-link wall. Full-scale data:
//! `cargo run --release -p ofar-bench --bin fig5`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn bench(c: &mut Criterion) {
    println!("{}", ofar_core::experiments::fig5(&Scale::quick()));
    let cfg = SimConfig::paper(2);
    let opts = SteadyOpts {
        warmup: 300,
        measure: 700,
    };
    let mut g = c.benchmark_group("fig5_advh");
    g.sample_size(10);
    for kind in [MechanismKind::Ofar, MechanismKind::OfarL, MechanismKind::Pb] {
        g.bench_function(format!("{kind}_ADVh_0.4_1kcycles"), |b| {
            b.iter(|| steady_state(cfg, kind, &TrafficSpec::adversarial(2), 0.4, opts, 5))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
