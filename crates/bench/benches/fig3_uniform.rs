//! Fig. 3 bench: regenerates the uniform-traffic series at smoke scale
//! and times one steady-state point per mechanism. Full-scale data:
//! `cargo run --release -p ofar-bench --bin fig3`.

use criterion::{criterion_group, criterion_main, Criterion};
use ofar_core::prelude::*;

fn series() {
    let scale = Scale::quick();
    println!("{}", ofar_core::experiments::fig3(&scale));
}

fn bench(c: &mut Criterion) {
    series();
    let cfg = SimConfig::paper(2);
    let opts = SteadyOpts {
        warmup: 300,
        measure: 700,
    };
    let mut g = c.benchmark_group("fig3_uniform");
    g.sample_size(10);
    for kind in [MechanismKind::Min, MechanismKind::Pb, MechanismKind::Ofar] {
        g.bench_function(format!("{kind}_UN_0.4_1kcycles"), |b| {
            b.iter(|| steady_state(cfg, kind, &TrafficSpec::uniform(), 0.4, opts, 3))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
