//! # ofar-bench
//!
//! The benchmark harness: one binary per figure of the paper
//! (`fig2b` … `fig9`), the §III theory printer (`theory`), the §VII
//! multi-ring reliability study (`rings`) and the tuning ablations
//! (`ablation_thresholds`, `ablation_pb`).
//!
//! Scale control (all binaries):
//!
//! * default — `h = 4` network, full curve shapes in minutes;
//! * `OFAR_FULL=1` — the paper's `h = 6`, 5,256-node network;
//! * `OFAR_QUICK=1` — `h = 2` smoke scale;
//! * `OFAR_H=<n>` — override `h` explicitly;
//! * `OFAR_CSV=<dir>` — additionally write each table as CSV.
//!
//! The `benches/` directory holds the criterion wrappers: each prints the
//! quick-scale series of its figure and then times a representative
//! simulation slice so `cargo bench` yields both data and performance.

use ofar_core::{Scale, Table};
use std::io::Write;

/// Print the scale banner for a figure binary.
pub fn announce(figure: &str, scale: &Scale) {
    eprintln!(
        "[{figure}] h={} ({} nodes), warmup={} measure={} cycles, seed={}",
        scale.h,
        scale.cfg().params.nodes(),
        scale.steady.warmup,
        scale.steady.measure,
        scale.seed,
    );
}

/// Print a table; if `OFAR_CSV` is set, also write `<dir>/<slug>.csv`.
pub fn emit(table: &Table) {
    println!("{table}");
    if let Ok(dir) = std::env::var("OFAR_CSV") {
        let slug: String = table
            .title
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::path::Path::new(&dir).join(format!("{slug}.csv"));
        if let Err(e) = std::fs::create_dir_all(&dir)
            .and_then(|_| std::fs::File::create(&path))
            .and_then(|mut f| f.write_all(table.to_csv().as_bytes()))
        {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("wrote {}", path.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_prints_without_csv() {
        let t = Table::new("smoke", &["a"]);
        emit(&t); // must not panic without OFAR_CSV
    }
}
