//! The §VII reliability study: embed the full family of `h`
//! edge-disjoint Hamiltonian escape rings and measure, by Monte Carlo,
//! how many random link failures the escape subnetwork survives as a
//! function of how many rings are deployed.

use ofar_core::prelude::*;
use ofar_core::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("rings", &scale);
    let topo = Dragonfly::balanced(scale.h);
    let all = HamiltonianRing::embed_disjoint(&topo, scale.h);
    assert!(HamiltonianRing::pairwise_edge_disjoint(&topo, &all));

    let trials = 300;
    let mut t = Table::new(
        format!(
            "Escape-subnetwork reliability: mean random link failures survived (h={}, {} routers, {trials} trials)",
            scale.h,
            topo.num_routers()
        ),
        &["rings deployed", "mean failures to outage", "p(survive h failures)"],
    );
    let mut rng = StdRng::seed_from_u64(scale.seed);
    let a = topo.routers_per_group();
    let h = scale.h;
    for k in 1..=all.len() {
        let rings = &all[..k];
        let mut total = 0usize;
        let mut survive_h = 0usize;
        for _ in 0..trials {
            let mut failed = Vec::new();
            loop {
                let r = RouterId::from(rng.gen_range(0..topo.num_routers()));
                let deg = (a - 1) + h;
                let port = rng.gen_range(0..deg);
                let other = if port < a - 1 {
                    topo.local_neighbor(r, port)
                } else {
                    topo.global_neighbor(r, port - (a - 1)).0
                };
                failed.push((r, other));
                let alive = HamiltonianRing::surviving_rings(&topo, rings, &failed);
                if failed.len() == h && alive > 0 {
                    survive_h += 1;
                }
                if alive == 0 {
                    total += failed.len();
                    break;
                }
            }
        }
        t.push(vec![
            k.to_string(),
            format!("{:.1}", total as f64 / trials as f64),
            format!("{:.2}", survive_h as f64 / trials as f64),
        ]);
    }
    ofar_bench::emit(&t);
}
