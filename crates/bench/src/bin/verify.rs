//! Certification table: run the static CDG deadlock verifier over the
//! shipped configuration space (every mechanism × VC budget × ring mode
//! × ring count used by the figure binaries) and print one row per
//! configuration — then demonstrate the rejections on deliberately
//! broken configurations, and finally run the routing-conformance model
//! checker: every mechanism's real `route`/`on_inject` code is driven
//! over the full abstract decision space, proved contained in its
//! declaration, proved livelock-free by ranking, and its static hop
//! bound checked against the paper's path-length table.
//!
//! ```text
//! cargo run --release -p ofar-bench --bin verify        # h = 4
//! OFAR_QUICK=1 cargo run -p ofar-bench --bin verify     # h = 2
//! ```

use ofar_core::prelude::*;
use ofar_core::verify::{verify_decl, RingSpec, VerifyError};
use ofar_core::Table;

fn cell(result: &Result<Certificate, VerifyError>) -> Vec<String> {
    match result {
        Ok(c) => vec![
            "CERTIFIED".into(),
            c.channels.to_string(),
            c.dependencies.to_string(),
            c.rings.to_string(),
            c.cycles_drained.to_string(),
            c.bubble_slack.map_or("-".into(), |s| s.to_string()),
        ],
        Err(e) => vec![
            "REJECTED".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            "-".into(),
            e.to_string(),
        ],
    }
}

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("verify", &scale);
    let h = scale.h;
    let headers = [
        "mechanism",
        "vcs l/g",
        "ring",
        "status",
        "channels",
        "deps",
        "rings",
        "drained",
        "slack",
    ];

    // 1. Every shipped (mechanism × ring) configuration at paper VCs —
    //    the space the figure binaries actually run.
    let mut t = Table::new(
        format!("Certification of the shipped configurations (h = {h})"),
        &headers,
    );
    for kind in MechanismKind::paper_set() {
        let base = kind.adapt_config(SimConfig::paper(h));
        let mut variants: Vec<SimConfig> = vec![base];
        if kind.needs_ring() {
            // fig8 compares ring models; rings sweeps ring counts 1..h.
            let mut phys = base;
            phys.ring = RingMode::Physical;
            variants.push(phys);
            for k in 2..=h {
                let mut multi = base;
                multi.escape_rings = k;
                variants.push(multi);
            }
        }
        for cfg in variants {
            let mut row = vec![
                kind.name().to_string(),
                format!("{}/{}", cfg.vcs_local, cfg.vcs_global),
                match cfg.ring {
                    RingMode::None => "none".into(),
                    RingMode::Physical => format!("phys x{}", cfg.escape_rings),
                    RingMode::Embedded => format!("emb x{}", cfg.escape_rings),
                },
            ];
            row.extend(cell(&certify(&cfg, kind)));
            t.push(row);
        }
    }

    // 2. Fig. 9's reduced-VC configuration: the ladder collapses, so
    //    only the escape-ring mechanism survives — the ladder mechanisms
    //    are *correctly* rejected with a named cycle.
    let mut t9 = Table::new(
        format!("Reduced VCs, fig. 9 (2 local / 1 global, h = {h})"),
        &headers,
    );
    for kind in MechanismKind::paper_set() {
        let mut cfg = SimConfig::reduced_vcs(h);
        if !kind.needs_ring() {
            cfg.ring = RingMode::None;
        }
        let mut row = vec![
            kind.name().to_string(),
            format!("{}/{}", cfg.vcs_local, cfg.vcs_global),
            if kind.needs_ring() { "emb x1" } else { "none" }.to_string(),
        ];
        row.extend(cell(&certify(&cfg, kind)));
        t9.push(row);
    }

    // 3. Deliberately broken configurations: the verifier must reject
    //    each one and name the offender.
    let mut tb = Table::new("Deliberately broken configurations", &["case", "verdict"]);
    let cfg = MechanismKind::Ofar.adapt_config(SimConfig::paper(h));
    let topo = Dragonfly::new(cfg.params);
    let ring = HamiltonianRing::embedded(&topo, 0);
    let decl = MechanismKind::Ofar.dependency_decl(&cfg);

    // 3a. a reversed ring edge (no longer a directed spanning cycle)
    let mut rev = RingSpec::from_ring(&topo, &ring);
    let (a, b) = rev.edges[5];
    rev.edges[5] = (b, a);
    tb.push(vec![
        "reversed ring edge".into(),
        verify_decl(&topo, &cfg, &decl, &[rev])
            .unwrap_err()
            .to_string(),
    ]);

    // 3b. ring buffers too shallow for the bubble
    let mut shallow = cfg;
    shallow.buf_ring = shallow.packet_size;
    tb.push(vec![
        "zero-bubble ring buffers".into(),
        certify(&shallow, MechanismKind::Ofar)
            .unwrap_err()
            .to_string(),
    ]);

    // 3c. an adaptive VC with no declared escape drain (Duato fails)
    let mut no_drain = decl.clone();
    no_drain.edges.retain(|e| {
        !(e.to == ofar_core::routing::ClassId::Escape
            && e.from == ofar_core::routing::ClassId::Global { vc: 0 })
    });
    let spec = RingSpec::from_ring(&topo, &ring);
    tb.push(vec![
        "OFAR without escape entry on g0".into(),
        verify_decl(&topo, &cfg, &no_drain, &[spec])
            .unwrap_err()
            .to_string(),
    ]);

    // 3d. ladder mechanism with too few VCs and no escape layer
    let mut folded = SimConfig::reduced_vcs(h);
    folded.ring = RingMode::None;
    tb.push(vec![
        "VAL on 2 local VCs, no ring".into(),
        certify(&folded, MechanismKind::Valiant)
            .unwrap_err()
            .to_string(),
    ]);

    // 4. Routing conformance: the model checker drives the real policy
    //    code over every reachable abstract decision and proves it stays
    //    inside the declaration with a strictly decreasing ranking. The
    //    hop bound column is *computed* from the exploration and must
    //    reproduce the paper's path-length table.
    let mut tc = Table::new(
        format!("Routing conformance (h = {h})"),
        &[
            "mechanism",
            "status",
            "states",
            "decisions",
            "observed",
            "dead",
            "hop bound",
            "paper",
            "ring bound",
        ],
    );
    let mut kinds = MechanismKind::paper_set().to_vec();
    kinds.push(MechanismKind::Par);
    let mut dead_edges: Vec<(String, String)> = Vec::new();
    let mut failures = 0usize;
    for kind in kinds {
        let cfg = kind.adapt_config(SimConfig::paper(h));
        match conformance(&cfg, kind) {
            Ok(rep) => {
                let declared = rep.observed.len() + rep.dead.len();
                if rep.hop_bound != rep.paper_bound {
                    failures += 1;
                }
                for d in &rep.dead {
                    dead_edges.push((
                        kind.name().to_string(),
                        format!("{} -> {} ({:?})", d.from, d.to, d.why),
                    ));
                }
                tc.push(vec![
                    kind.name().to_string(),
                    "CERTIFIED".into(),
                    rep.states.to_string(),
                    rep.decisions.to_string(),
                    format!("{}/{}", rep.observed.len(), declared),
                    rep.dead.len().to_string(),
                    rep.hop_bound.to_string(),
                    rep.paper_bound.to_string(),
                    rep.ring_bound.map_or("-".into(), |b| b.to_string()),
                ]);
            }
            Err(e) => {
                failures += 1;
                tc.push(vec![
                    kind.name().to_string(),
                    "REJECTED".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    e.to_string(),
                ]);
            }
        }
    }

    // 4b. Dead declared transitions: declared dependencies the code never
    //     exercised. These widen the certified graph beyond what runs —
    //     legal (the declaration may over-approximate) but worth eyes.
    let mut td = Table::new(
        "Dead declared transitions (declared but never observed)",
        &["mechanism", "transition"],
    );
    for (m, e) in &dead_edges {
        td.push(vec![m.clone(), e.clone()]);
    }

    ofar_bench::emit(&t);
    ofar_bench::emit(&t9);
    ofar_bench::emit(&tb);
    ofar_bench::emit(&tc);
    ofar_bench::emit(&td);

    let rejected = t
        .rows
        .iter()
        .filter(|r| r.iter().any(|c| c == "REJECTED"))
        .count();
    assert_eq!(rejected, 0, "every shipped configuration must certify");
    assert!(
        tb.rows.iter().all(|r| !r[1].is_empty()),
        "every broken configuration must be rejected with a reason"
    );
    assert_eq!(
        failures, 0,
        "every mechanism must conform with its paper hop bound"
    );
    eprintln!(
        "all shipped configurations certified; all broken ones rejected; \
         all mechanisms conform with paper hop bounds"
    );
}
