//! Regenerates Fig. 2b: Valiant saturation throughput vs ADV offset.

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig2b", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig2b(&scale));
}
