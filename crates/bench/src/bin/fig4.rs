//! Regenerates Fig4 of the paper (see ofar_core::experiments::fig4).

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig4", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig4(&scale));
}
