//! Regenerates Fig8 of the paper (see ofar_core::experiments::fig8).

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig8", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig8(&scale));
}
