//! Transient faults: burst delivery over lossy links, per mechanism and
//! per bit-error rate.
//!
//! For every mechanism × BER, a burst is injected while every link
//! suffers independent per-phit bit errors; the link-level retransmission
//! layer (CRC-32, seq/ack replay, timeout/backoff — see
//! `ofar_engine::llr`) recovers every corrupted or dropped transfer. The
//! table reports delivered fraction, goodput, mean and p99 latency, and
//! the retry/drop counters — the latency tail is where the retransmit
//! timeouts show up first.

use ofar_core::faults::{ber_sweep, BerPoint};
use ofar_core::prelude::*;
use ofar_core::StallKind;
use ofar_core::Table;

fn outcome(p: &BerPoint) -> String {
    match &p.stall {
        None => "drained".into(),
        Some(StallKind::Partition { unreachable_pairs }) => {
            format!("partition ({} pairs)", unreachable_pairs.len())
        }
        Some(StallKind::RetransmissionStorm { links, retransmits }) => {
            format!("retx storm ({} links, {retransmits} retries)", links.len())
        }
        Some(StallKind::Deadlock { stalled_routers }) => {
            format!("deadlock ({} routers)", stalled_routers.len())
        }
        Some(StallKind::Livelock { stalled_routers }) => {
            format!("livelock ({} routers)", stalled_routers.len())
        }
        Some(StallKind::Saturation { backlog, .. }) => {
            format!("saturation ({backlog} backlog)")
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("ber", &scale);
    let cfg = scale.cfg();
    let h = scale.h;

    let mechs = [
        MechanismKind::Min,
        MechanismKind::Valiant,
        MechanismKind::Pb,
        MechanismKind::Ofar,
    ];
    let bers = [0.0, 1e-4, 1e-3, 1e-2];

    let pts = ber_sweep(
        cfg,
        &mechs,
        &TrafficSpec::uniform(),
        scale.burst_packets,
        &bers,
        scale.seed,
    );

    let mut t = Table::new(
        format!(
            "Burst delivery vs link bit-error rate under UN (h={h}, {} nodes, {} pkts/node)",
            cfg.params.nodes(),
            scale.burst_packets,
        ),
        &[
            "mechanism",
            "BER",
            "delivered",
            "drain cycles",
            "avg latency",
            "p99 latency",
            "goodput",
            "retransmits",
            "crc drops",
            "wire drops",
            "escalations",
            "outcome",
        ],
    );
    for p in &pts {
        assert_eq!(
            p.duplicate_deliveries,
            0,
            "link layer must dedup: {} at BER {}",
            p.mechanism.name(),
            p.ber
        );
        t.push(vec![
            p.mechanism.name().to_string(),
            format!("{:.0e}", p.ber),
            format!("{:.1}%", p.delivered_fraction * 100.0),
            p.cycles.map_or("—".into(), |c| c.to_string()),
            format!("{:.0}", p.avg_latency),
            format!("{:.0}", p.p99_latency),
            format!("{:.3}", p.throughput),
            p.retransmits.to_string(),
            p.crc_drops.to_string(),
            p.wire_drops.to_string(),
            p.escalations.to_string(),
            outcome(p),
        ]);
    }
    ofar_bench::emit(&t);
}
