//! Kill-and-resume smoke driver for the crash-resilient result store
//! (used by the CI `resume` job, runnable by hand):
//!
//! ```text
//! resume full <dir>           run the whole reference sweep into <dir>
//! resume partial <dir> <k>    run the same sweep but exit(3) after k
//!                             points — a deliberate mid-suite "crash"
//! resume continue <dir>       resume the sweep, re-running only the
//!                             missing points
//! resume compare <a> <b>      byte-compare two result stores; exit 1
//!                             on any difference
//! ```
//!
//! The CI job runs `full` into one directory, `partial` + `continue`
//! into another, then `compare`s them: an interrupted-and-resumed sweep
//! must leave byte-identical manifests and result objects.

use ofar_core::prelude::*;
use ofar_core::{resumable_load_sweep, ResultStore};
use std::process::exit;

fn sweep_spec() -> (SimConfig, MechanismKind, TrafficSpec, Vec<f64>, SteadyOpts) {
    (
        SimConfig::paper(2),
        MechanismKind::Ofar,
        TrafficSpec::adversarial(2),
        vec![0.05, 0.15, 0.25, 0.35, 0.45, 0.55],
        SteadyOpts {
            warmup: 800,
            measure: 1_200,
        },
    )
}

fn run_sweep(dir: &str, stop_after: Option<usize>) {
    let (cfg, kind, spec, loads, opts) = sweep_spec();
    let mut store = ResultStore::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open result store {dir}: {e}");
        exit(2);
    });
    let already = store.len();
    let points = resumable_load_sweep(&mut store, cfg, kind, &spec, &loads, opts, 77, |i| {
        eprintln!("point {}/{} recorded", i + 1, loads.len());
        if stop_after == Some(i + 1) {
            eprintln!("simulated crash after {} points", i + 1);
            exit(3);
        }
    });
    println!(
        "sweep complete: {} points ({} resumed from {dir})",
        points.len(),
        already
    );
    for p in &points {
        println!(
            "  load {:.2}  accepted {:.4}  latency {:.1}",
            p.load, p.throughput, p.avg_latency
        );
    }
}

/// Byte-compare the manifests and every referenced object of two stores.
fn compare(a: &str, b: &str) -> bool {
    let read = |root: &str, name: &str| std::fs::read(std::path::Path::new(root).join(name));
    let (ma, mb) = (read(a, "MANIFEST"), read(b, "MANIFEST"));
    let (ma, mb) = match (ma, mb) {
        (Ok(ma), Ok(mb)) => (ma, mb),
        _ => {
            eprintln!("missing MANIFEST in {a} or {b}");
            return false;
        }
    };
    if ma != mb {
        eprintln!("manifests differ");
        return false;
    }
    let mut ok = true;
    for line in String::from_utf8_lossy(&ma).lines() {
        let Some((hash, key)) = line.split_once('\t') else {
            continue;
        };
        let obj = format!("objects/{hash}.res");
        match (read(a, &obj), read(b, &obj)) {
            (Ok(x), Ok(y)) if x == y => {}
            _ => {
                eprintln!("object {hash} ({key}) differs or is missing");
                ok = false;
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["full", dir] => run_sweep(dir, None),
        ["partial", dir, k] => {
            let k: usize = k.parse().unwrap_or_else(|_| {
                eprintln!("bad point count {k}");
                exit(2);
            });
            run_sweep(dir, Some(k));
        }
        ["continue", dir] => run_sweep(dir, None),
        ["compare", a, b] => {
            if compare(a, b) {
                println!("stores are byte-identical");
            } else {
                exit(1);
            }
        }
        _ => {
            eprintln!("usage: resume full|continue <dir> | partial <dir> <k> | compare <a> <b>");
            exit(2);
        }
    }
}
