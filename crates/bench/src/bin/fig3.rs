//! Regenerates Fig3 of the paper (see ofar_core::experiments::fig3).

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig3", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig3(&scale));
}
