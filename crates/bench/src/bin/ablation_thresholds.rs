//! Ablation of OFAR's misroute thresholds (§IV-B / §V): the paper chose
//! `Th_min = 0, Th_nonmin = 0.9·Q_min` empirically as "a reasonable
//! trade-off between the performance in adversarial and uniform traffic
//! patterns". This binary reruns that study: each threshold policy is
//! scored on uniform latency at moderate load and on ADV+h throughput at
//! high load.

use ofar_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("ablation_thresholds", &scale);
    let cfg = scale.cfg();
    let h = scale.h;

    let candidates: Vec<(String, MisrouteThreshold)> = [0.3, 0.5, 0.7, 0.9, 1.0]
        .into_iter()
        .map(|f| {
            (
                format!("variable x{f}"),
                MisrouteThreshold::Variable { factor: f },
            )
        })
        .chain([
            (
                "static 100%/40%".to_string(),
                MisrouteThreshold::Static {
                    th_min: 1.0,
                    th_nonmin: 0.4,
                },
            ),
            (
                "static 50%/40%".to_string(),
                MisrouteThreshold::Static {
                    th_min: 0.5,
                    th_nonmin: 0.4,
                },
            ),
        ])
        .collect();

    let mut t = Table::new(
        format!("OFAR threshold ablation (h={h})"),
        &[
            "threshold",
            "UN@0.65 latency",
            "UN@0.65 thr",
            "ADVh@0.45 latency",
            "ADVh@0.45 thr",
        ],
    );
    for (name, th) in candidates {
        let ofar = Some(OfarConfig {
            threshold: th,
            ..OfarConfig::base()
        });
        let un = steady_state_tuned(
            cfg,
            MechanismKind::Ofar,
            &TrafficSpec::uniform(),
            0.65,
            scale.steady,
            scale.seed,
            ofar,
            None,
        );
        let adv = steady_state_tuned(
            cfg,
            MechanismKind::Ofar,
            &TrafficSpec::adversarial(h),
            0.45,
            scale.steady,
            scale.seed,
            ofar,
            None,
        );
        t.push(vec![
            name,
            format!("{:.1}", un.avg_latency),
            format!("{:.4}", un.throughput),
            format!("{:.1}", adv.avg_latency),
            format!("{:.4}", adv.throughput),
        ]);
    }
    ofar_bench::emit(&t);
}
