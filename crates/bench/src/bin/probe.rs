//! Diagnostic probe: mechanism internals (misroute composition, ring
//! traffic, hop breakdown) for one steady-state run. Not part of the
//! figure suite; kept for development archaeology.
//!
//! Usage: `probe <mech> <pattern> <load> [h]`, e.g. `probe OFAR UN 0.675 2`.

use ofar_core::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mech = args.get(1).map(String::as_str).unwrap_or("OFAR");
    let pattern = args.get(2).map(String::as_str).unwrap_or("UN");
    let load: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.5);
    let h: usize = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(2);

    let kind = match mech {
        "MIN" => MechanismKind::Min,
        "VAL" => MechanismKind::Valiant,
        "PB" => MechanismKind::Pb,
        "PAR" => MechanismKind::Par,
        "OFAR-L" => MechanismKind::OfarL,
        _ => MechanismKind::Ofar,
    };
    let spec = match pattern {
        "UN" => TrafficSpec::uniform(),
        s if s.starts_with("ADV+") => TrafficSpec::adversarial(s[4..].parse().unwrap()),
        _ => TrafficSpec::uniform(),
    };

    let factor: Option<f64> = args.get(5).and_then(|s| s.parse().ok());
    let cfg = kind.adapt_config(SimConfig::paper(h));
    let tuned = factor.map(|f| OfarConfig {
        threshold: MisrouteThreshold::Variable { factor: f },
        ..OfarConfig::base()
    });
    let mut net = Network::new(cfg, kind.build_tuned(&cfg, 1, tuned, None));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, spec, 2);
    let mut bern = Bernoulli::new(load, cfg.packet_size, 3);
    let nodes = net.num_nodes();
    for _ in 0..3_000 {
        bern.cycle(nodes, |s| {
            let d = gen.destination(s);
            net.generate(s, d);
        });
        net.step();
    }
    let start = net.stats().clone();
    for _ in 0..5_000 {
        bern.cycle(nodes, |s| {
            let d = gen.destination(s);
            net.generate(s, d);
        });
        net.step();
    }
    let end = net.stats().clone();
    let w = StatsWindow::between(&start, &end, 5_000, nodes);
    println!("{mech} {pattern} load={load} h={h}");
    println!(
        "  throughput {:.4}  latency {:.1}  hops {:.2}",
        w.throughput(),
        w.avg_latency(),
        w.avg_hops()
    );
    println!(
        "  per-pkt: local mis {:.3}  global mis {:.3}",
        w.local_misroutes as f64 / w.delivered_packets.max(1) as f64,
        w.global_misroutes as f64 / w.delivered_packets.max(1) as f64,
    );
    println!(
        "  ring: entries {}  advances {}  exits {}  deliveries {}",
        end.ring_entries - start.ring_entries,
        end.ring_advances - start.ring_advances,
        end.ring_exits - start.ring_exits,
        end.ring_deliveries - start.ring_deliveries,
    );
}
