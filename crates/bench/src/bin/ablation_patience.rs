//! Ablation of OFAR's escape-ring patience: how long a head-blocked
//! packet waits before requesting the escape ring (§IV-C makes the ring
//! a last resort). Too eager floods the slow ring with ordinarily
//! congested traffic; too patient starves genuinely stalled dependency
//! chains of their rescue. Scored at the worst-case ADV+h pattern,
//! below and above saturation.

use ofar_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("ablation_patience", &scale);
    let cfg = scale.cfg();
    let h = scale.h;
    let spec = TrafficSpec::adversarial(h);

    let mut t = Table::new(
        format!("OFAR ring-patience ablation, ADV+{h} (h={h})"),
        &[
            "patience",
            "pre-sat latency",
            "pre-sat thr",
            "overload thr",
            "overload ring entries",
        ],
    );
    for patience in [16u16, 48, 100, 200, 255] {
        let ofar = Some(OfarConfig {
            ring_patience: patience,
            ..OfarConfig::base()
        });
        let pre = steady_state_tuned(
            cfg,
            MechanismKind::Ofar,
            &spec,
            0.25,
            scale.steady,
            scale.seed,
            ofar,
            None,
        );
        let over = steady_state_tuned(
            cfg,
            MechanismKind::Ofar,
            &spec,
            0.55,
            scale.steady,
            scale.seed,
            ofar,
            None,
        );
        t.push(vec![
            patience.to_string(),
            format!("{:.1}", pre.avg_latency),
            format!("{:.4}", pre.throughput),
            format!("{:.4}", over.throughput),
            over.ring_entries.to_string(),
        ]);
    }
    ofar_bench::emit(&t);
}
