//! Regenerates Fig6 of the paper (see ofar_core::experiments::fig6).

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig6", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig6(&scale));
}
