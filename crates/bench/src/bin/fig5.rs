//! Regenerates Fig5 of the paper (see ofar_core::experiments::fig5).

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig5", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig5(&scale));
}
