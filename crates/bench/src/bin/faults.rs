//! §VII degraded operation: burst delivery under live link failures.
//!
//! For every mechanism × escape-ring count × failure count, a burst is
//! injected and a seeded fault plan kills that many random global links
//! at cycle 200; the table reports the delivered fraction, drain time,
//! latency and throughput, plus the watchdog's diagnosis for runs that
//! could not finish (oblivious mechanisms on a severed minimal path, or
//! genuinely partitioned networks).

use ofar_core::faults::{degradation_sweep, DegradationPoint};
use ofar_core::prelude::*;
use ofar_core::StallKind;
use ofar_core::Table;

fn outcome(p: &DegradationPoint) -> String {
    match &p.stall {
        None => "drained".into(),
        Some(StallKind::Partition { unreachable_pairs }) => {
            format!("partition ({} pairs)", unreachable_pairs.len())
        }
        Some(StallKind::RetransmissionStorm { links, retransmits }) => {
            format!("retx storm ({} links, {retransmits} retries)", links.len())
        }
        Some(StallKind::Deadlock { stalled_routers }) => {
            format!("deadlock ({} routers)", stalled_routers.len())
        }
        Some(StallKind::Livelock { stalled_routers }) => {
            format!("livelock ({} routers)", stalled_routers.len())
        }
        Some(StallKind::Saturation { backlog, .. }) => {
            format!("saturation ({backlog} backlog)")
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("faults", &scale);
    let cfg = scale.cfg();
    let h = scale.h;

    let mechs = MechanismKind::paper_set();
    let ring_counts = [1, h];
    let mut failure_counts = vec![0, h.saturating_sub(1), h, 2 * h];
    failure_counts.dedup();

    let pts = degradation_sweep(
        cfg,
        &mechs,
        &TrafficSpec::adversarial(h),
        scale.burst_packets,
        &ring_counts,
        &failure_counts,
        scale.seed,
    );

    let mut t = Table::new(
        format!(
            "Degraded operation under ADV+{h}: burst delivery vs failed global links (h={h}, {} nodes, {} pkts/node)",
            cfg.params.nodes(),
            scale.burst_packets,
        ),
        &[
            "mechanism",
            "rings",
            "failed links",
            "delivered",
            "drain cycles",
            "avg latency",
            "throughput",
            "outcome",
        ],
    );
    for p in &pts {
        t.push(vec![
            p.mechanism.name().to_string(),
            p.rings.to_string(),
            p.failures.to_string(),
            format!("{:.1}%", p.delivered_fraction * 100.0),
            p.cycles.map_or("—".into(), |c| c.to_string()),
            format!("{:.0}", p.avg_latency),
            format!("{:.3}", p.throughput),
            outcome(p),
        ]);
    }
    ofar_bench::emit(&t);
}
