//! Prints the analytic §III throughput bounds and the l₂-concentration
//! table behind Fig. 2b, for several network sizes including the paper's
//! h = 6 and the PERCS-class h = 16.

use ofar_core::topology::DragonflyParams;
use ofar_core::{theory, Table};

fn main() {
    let mut bounds = Table::new(
        "§III analytic throughput bounds (phits/node/cycle)",
        &[
            "h",
            "nodes",
            "MIN_adv_intergroup",
            "MIN_adv_intragroup",
            "VAL_global",
            "VAL_adv+h (1/h)",
        ],
    );
    for h in [2usize, 4, 6, 16] {
        let p = DragonflyParams::balanced(h);
        bounds.push(vec![
            h.to_string(),
            p.nodes().to_string(),
            format!("{:.5}", theory::min_adversarial_bound(&p)),
            format!("{:.5}", theory::min_local_adversarial_bound(&p)),
            format!("{:.3}", theory::valiant_global_bound()),
            format!("{:.5}", theory::valiant_advh_bound(&p)),
        ]);
    }
    println!("{bounds}");

    let scale = ofar_core::Scale::from_env();
    let p = DragonflyParams::balanced(scale.h);
    let mut conc = Table::new(
        format!(
            "l2 concentration and Valiant ADV+n estimate (h={}, the analytic Fig. 2b)",
            scale.h
        ),
        &["offset", "concentration C(n)", "estimate"],
    );
    for n in 1..=(2 * scale.h + 2).min(p.groups() - 1) {
        conc.push(vec![
            format!("+{n}"),
            theory::adv_l2_concentration(&p, n).to_string(),
            format!("{:.4}", theory::valiant_adv_estimate(&p, n)),
        ]);
    }
    println!("{conc}");
}
