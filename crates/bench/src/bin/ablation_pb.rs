//! Ablation of the Piggybacking tunables (the paper tuned PB's
//! thresholds empirically, §V, without publishing them): saturation
//! threshold and broadcast period, scored like the OFAR ablation.

use ofar_core::prelude::*;

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("ablation_pb", &scale);
    let cfg = scale.cfg();
    let h = scale.h;

    let mut t = Table::new(
        format!("PB tunable ablation (h={h})"),
        &[
            "sat_threshold",
            "period",
            "UN@0.45 latency",
            "UN@0.45 thr",
            "ADV2@0.3 latency",
            "ADV2@0.3 thr",
        ],
    );
    for sat in [0.1, 0.25, 0.4, 0.6] {
        for period in [5u64, 10, 40] {
            let pb = Some(PbConfig {
                saturation_threshold: sat,
                update_period: period,
            });
            let un = steady_state_tuned(
                cfg,
                MechanismKind::Pb,
                &TrafficSpec::uniform(),
                0.45,
                scale.steady,
                scale.seed,
                None,
                pb,
            );
            let adv = steady_state_tuned(
                cfg,
                MechanismKind::Pb,
                &TrafficSpec::adversarial(2),
                0.3,
                scale.steady,
                scale.seed,
                None,
                pb,
            );
            t.push(vec![
                format!("{sat}"),
                period.to_string(),
                format!("{:.1}", un.avg_latency),
                format!("{:.4}", un.throughput),
                format!("{:.1}", adv.avg_latency),
                format!("{:.4}", adv.throughput),
            ]);
        }
    }
    ofar_bench::emit(&t);
}
