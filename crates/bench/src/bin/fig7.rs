//! Regenerates Fig7 of the paper (see ofar_core::experiments::fig7).

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig7", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig7(&scale));
}
