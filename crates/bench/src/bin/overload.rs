//! Post-saturation overload: throughput retention, latency tail and
//! fairness at 2× each mechanism's saturation load, congestion
//! management off vs on.
//!
//! For every mechanism × {CM off, CM on} × {UN, ADV+1}, the runner
//! measures the mechanism's saturation throughput and then drives twice
//! that load open-loop through the same configuration. The table
//! reports how much of the saturation throughput survives (`retention`,
//! acceptance floor 0.9 with CM on), the p99 latency of delivered
//! packets, the Jain fairness index over per-source deliveries, and the
//! watchdog's diagnosis for runs that stopped making progress —
//! including the `saturation` verdict that distinguishes diverging
//! overload backlog from true routing livelock.

use ofar_core::overload::{overload_sweep, OverloadOpts, OverloadPoint};
use ofar_core::prelude::*;
use ofar_core::StallKind;
use ofar_core::Table;

fn outcome(p: &OverloadPoint) -> String {
    match &p.stall {
        None => "stable".into(),
        Some(StallKind::Partition { unreachable_pairs }) => {
            format!("partition ({} pairs)", unreachable_pairs.len())
        }
        Some(StallKind::RetransmissionStorm { links, retransmits }) => {
            format!("retx storm ({} links, {retransmits} retries)", links.len())
        }
        Some(StallKind::Deadlock { stalled_routers }) => {
            format!("deadlock ({} routers)", stalled_routers.len())
        }
        Some(StallKind::Livelock { stalled_routers }) => {
            format!("livelock ({} routers)", stalled_routers.len())
        }
        Some(StallKind::Saturation { backlog, .. }) => {
            format!("saturation ({backlog} backlog)")
        }
    }
}

fn main() {
    let scale = Scale::from_env();
    ofar_bench::announce("overload", &scale);
    let cfg = scale.cfg();
    let h = scale.h;
    let opts = OverloadOpts {
        sat: scale.steady,
        warmup: scale.steady.warmup,
        measure: scale.steady.measure,
        ..OverloadOpts::default()
    };

    let mechs = MechanismKind::paper_set();
    let mut t = Table::new(
        format!(
            "Post-saturation overload at {:.1}× saturation (h={h}, {} nodes): CM off vs on",
            opts.factor,
            cfg.params.nodes(),
        ),
        &[
            "mechanism",
            "pattern",
            "cm",
            "saturation",
            "offered",
            "throughput",
            "retention",
            "p99",
            "jain",
            "deferrals",
            "outcome",
        ],
    );
    for spec in [TrafficSpec::uniform(), TrafficSpec::adversarial(1)] {
        let pts = overload_sweep(cfg, &mechs, &spec, opts, scale.seed);
        for p in &pts {
            t.push(vec![
                p.mechanism.name().to_string(),
                spec.label(),
                if p.cm { "on" } else { "off" }.to_string(),
                format!("{:.3}", p.saturation),
                format!("{:.3}", p.offered),
                format!("{:.3}", p.throughput),
                format!("{:.2}", p.retention),
                format!("{:.0}", p.p99_latency),
                format!("{:.3}", p.jain),
                p.throttle_deferrals.to_string(),
                outcome(p),
            ]);
        }
    }
    ofar_bench::emit(&t);
}
