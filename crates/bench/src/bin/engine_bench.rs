//! Engine-throughput baseline (ROADMAP item 1): time the h=4
//! adversarial burst and the snapshot codec, and emit the measurements
//! as JSON — to stdout and, when a path argument is given, to that file
//! (the checked-in seed lives at `BENCH_engine.json`).
//!
//! Reported figures:
//!
//! * burst: simulated cycles/sec and delivered phits/sec of wall time —
//!   the numbers the hot-path rewrite must move;
//! * snapshot: serialized size plus save/restore wall latency at
//!   mid-burst occupancy (the checkpoint layer's per-checkpoint cost);
//! * cm: the same burst re-timed with the congestion-management layer
//!   enabled — a drained burst barely throttles, so the overhead column
//!   isolates the per-cycle *sensing* cost (occupancy EWMA + token
//!   refill) the CM layer adds to the hot path.
//!
//! Wall-clock figures are machine-dependent; the committed seed records
//! one reference machine's trajectory, not a CI-enforced bound.

use ofar_core::prelude::*;
use std::time::Instant;

/// Accumulated CPU time (user + system) of this process in
/// milliseconds, when the platform exposes it (`/proc/self/stat`).
/// CPU time is immune to scheduler preemption and neighbor load, which
/// on a shared machine swamp wall-clock differences of a few percent.
fn cpu_time_ms() -> Option<f64> {
    let stat = std::fs::read_to_string("/proc/self/stat").ok()?;
    // Fields 14/15 (utime/stime, in clock ticks) counted after the
    // parenthesized comm field, which may itself contain spaces.
    let after = stat.rsplit(')').next()?;
    let mut it = after.split_whitespace().skip(11);
    let utime: f64 = it.next()?.parse().ok()?;
    let stime: f64 = it.next()?.parse().ok()?;
    Some((utime + stime) * 10.0) // 100 Hz ticks
}

/// Median wall time of `reps` runs of `f`, in milliseconds.
fn median_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t = Instant::now();
            let _keep = f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

fn main() {
    let h: usize = std::env::var("OFAR_H")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let ppn = 24;
    let seed = 42;
    let kind = MechanismKind::Ofar;
    let spec = TrafficSpec::adversarial(1);
    let cfg = kind.adapt_config(SimConfig::paper(h).with_seed(seed));
    let nodes = cfg.params.nodes();
    eprintln!(
        "engine baseline: h={h} ({nodes} nodes), {ppn} pkts/node {} burst",
        spec.label()
    );

    // --- burst throughput ------------------------------------------------
    // Warm the per-process certification cache first so the timing below
    // measures the cycle engine, not the one-off CDG proof.
    burst(cfg, kind, &spec, 1, seed);
    let wall = Instant::now();
    let r = burst(cfg, kind, &spec, ppn, seed);
    let burst_secs = wall.elapsed().as_secs_f64();
    let cycles = r.cycles.expect("baseline burst must drain");
    let cycles_per_sec = cycles as f64 / burst_secs;
    let phits_per_sec = r.stats.delivered_phits as f64 / burst_secs;
    eprintln!(
        "burst: {cycles} cycles in {:.2}s — {:.0} cycles/s, {:.0} phits/s",
        burst_secs, cycles_per_sec, phits_per_sec
    );

    // --- snapshot codec --------------------------------------------------
    // Rebuild the burst and stop halfway to the drain point, where
    // occupancy (and therefore snapshot size) is representative.
    let mut net = Network::new(cfg, kind.build(&cfg, seed));
    let topo = Dragonfly::new(cfg.params);
    let mut gen = TrafficGen::new(&topo, spec.clone(), seed.wrapping_add(1));
    for n in 0..nodes {
        for _ in 0..ppn {
            let src = NodeId::from(n);
            let dst = gen.destination(src);
            net.generate(src, dst);
        }
    }
    net.run(cycles / 2);
    let snap = net.save_snapshot();
    let save_ms = median_ms(5, || net.save_snapshot());
    let restore_ms = median_ms(5, || {
        let mut fresh = Network::new(cfg, kind.build(&cfg, seed));
        fresh.restore_snapshot(&snap).expect("restore");
        fresh
    });
    eprintln!(
        "snapshot: {} bytes, save {:.2} ms, restore {:.2} ms",
        snap.len(),
        save_ms,
        restore_ms
    );

    // --- congestion-management hot-path overhead -------------------------
    // Interleave (baseline, cm) runs and compare *accumulated CPU time*
    // (wall time where the platform hides CPU time): back-to-back pairs
    // see the same CPU frequency, summing N pairs averages residual
    // noise down by ~sqrt(N), and CPU time drops scheduler preemption
    // and neighbor load entirely — on a shared machine those swing
    // single-burst wall clocks several percent either way, wider than
    // the effect being measured. The committed seed documents the
    // overhead staying in the low single digits (the acceptance bar is
    // < 3% on a quiet machine).
    let cm_cfg = kind.adapt_config(SimConfig::paper(h).with_seed(seed).with_cm());
    burst(cm_cfg, kind, &spec, 1, seed); // warm the certification cache
    let reps = 12;
    let mut base_ms = 0.0f64;
    let mut cm_ms = 0.0f64;
    let time_one = |f: &mut dyn FnMut()| match cpu_time_ms() {
        Some(c0) => {
            f();
            cpu_time_ms().map_or(0.0, |c1| c1 - c0)
        }
        None => {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        }
    };
    for _ in 0..reps {
        base_ms += time_one(&mut || {
            burst(cfg, kind, &spec, ppn, seed);
        });
        cm_ms += time_one(&mut || {
            burst(cm_cfg, kind, &spec, ppn, seed);
        });
    }
    base_ms /= reps as f64;
    cm_ms /= reps as f64;
    let cm_deferrals = burst(cm_cfg, kind, &spec, ppn, seed)
        .stats
        .cm_throttle_deferrals;
    let overhead_pct = (cm_ms / base_ms - 1.0) * 100.0;
    eprintln!(
        "cm: baseline {base_ms:.1} ms, cm-enabled {cm_ms:.1} ms ({overhead_pct:+.1}%), \
         {cm_deferrals} deferrals"
    );

    let json = format!(
        "{{\n  \"bench\": \"engine\",\n  \"config\": {{ \"h\": {h}, \"nodes\": {nodes}, \
         \"mechanism\": \"{}\", \"pattern\": \"{}\", \"packets_per_node\": {ppn}, \"seed\": {seed} }},\n  \
         \"burst\": {{ \"cycles\": {cycles}, \"delivered_packets\": {}, \"delivered_phits\": {}, \
         \"wall_secs\": {burst_secs:.3}, \"cycles_per_sec\": {cycles_per_sec:.0}, \
         \"phits_per_sec\": {phits_per_sec:.0} }},\n  \
         \"snapshot\": {{ \"bytes\": {}, \"save_ms\": {save_ms:.3}, \"restore_ms\": {restore_ms:.3} }},\n  \
         \"cm\": {{ \"baseline_ms\": {base_ms:.3}, \"enabled_ms\": {cm_ms:.3}, \
         \"overhead_pct\": {overhead_pct:.2}, \"throttle_deferrals\": {cm_deferrals} }}\n}}\n",
        kind.name(),
        spec.label(),
        r.stats.delivered_packets,
        r.stats.delivered_phits,
        snap.len(),
    );
    print!("{json}");
    if let Some(path) = std::env::args().nth(1) {
        std::fs::write(&path, &json).expect("write benchmark json");
        eprintln!("wrote {path}");
    }
}
