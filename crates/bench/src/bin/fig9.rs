//! Regenerates Fig9 of the paper (see ofar_core::experiments::fig9).

fn main() {
    let scale = ofar_core::Scale::from_env();
    ofar_bench::announce("fig9", &scale);
    ofar_bench::emit(&ofar_core::experiments::fig9(&scale));
}
