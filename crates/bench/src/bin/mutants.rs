//! Mutation-adequacy run: seed every cataloged defect into the real
//! mechanisms and the engine's flow control, drive each mutant through
//! the four-oracle proof stack, and print the kill matrix.
//!
//! Scale: h=2 by default (the PR-time smoke run, a few seconds);
//! `OFAR_FULL=1` (or `OFAR_H=4`) re-measures at h=4 for the nightly
//! adequacy job. Exit status is the CI contract:
//!
//! * **non-zero** when a *covered* pair survived (an oracle regressed),
//!   when fewer than 20 distinct operators were killed, or when any
//!   kill lacks a witness;
//! * **zero** otherwise — survivors outside the covered set are
//!   expected and printed as the known-gap list (DESIGN.md §11).

use ofar_core::engine::SimConfig;
use ofar_mutate::{covered, KillMatrix, MutationOp};
use std::process::ExitCode;

/// Distinct-operator kill floor enforced in CI.
const MIN_KILLED_OPS: usize = 20;

fn main() -> ExitCode {
    let h = match std::env::var("OFAR_H") {
        Ok(v) => v.parse().expect("OFAR_H must be an integer"),
        Err(_) => {
            if std::env::var("OFAR_FULL").is_ok_and(|v| v == "1") {
                4
            } else {
                2
            }
        }
    };
    let seed: u64 = std::env::var("OFAR_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0xAD0B5);
    let cfg = SimConfig::paper(h);
    eprintln!(
        "[mutants] h={h} ({} nodes), {} operators, {} (operator x mechanism) pairs, seed={seed}",
        cfg.params.nodes(),
        MutationOp::ALL.len(),
        ofar_mutate::pairs().len(),
    );

    let start = std::time::Instant::now();
    let matrix = KillMatrix::run(&cfg, seed);
    eprintln!(
        "[mutants] matrix done in {:.1}s",
        start.elapsed().as_secs_f64()
    );

    println!("kill matrix (h={h}):\n");
    println!("{}", matrix.render());
    println!("kill witnesses:");
    print!("{}", matrix.render_witnesses());
    println!();
    for (oracle, kills) in matrix.kills_per_oracle() {
        println!("killed first by {:<12} {kills}", oracle.name());
    }
    let survivors = matrix.survivors();
    println!(
        "\n{} pairs, {} distinct operators killed, covered kill rate {:.0}%, {} survivor(s)",
        matrix.outcomes.len(),
        matrix.distinct_killed_ops(),
        100.0 * matrix.covered_kill_rate(),
        survivors.len(),
    );
    for s in &survivors {
        let status = if covered(s.op, s.mech) {
            "REGRESSION"
        } else {
            "known gap"
        };
        println!(
            "  survivor [{status}]: {} x {} — {}",
            s.op.name(),
            s.mech.name(),
            s.op.describe()
        );
    }

    let mut failed = false;
    let regressions = matrix.regressions();
    if !regressions.is_empty() {
        eprintln!(
            "\nFAIL: {} covered pair(s) survived — an oracle regressed:",
            regressions.len()
        );
        for r in &regressions {
            eprintln!("  {} x {}", r.op.name(), r.mech.name());
        }
        failed = true;
    }
    if matrix.distinct_killed_ops() < MIN_KILLED_OPS {
        eprintln!(
            "\nFAIL: only {} distinct operators killed (floor: {MIN_KILLED_OPS})",
            matrix.distinct_killed_ops()
        );
        failed = true;
    }
    if matrix
        .outcomes
        .iter()
        .any(|o| o.killed_by().is_some_and(|(_, w)| w.is_empty()))
    {
        eprintln!("\nFAIL: a kill has an empty witness");
        failed = true;
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
