#!/bin/bash
cd /root/repo
for f in fig2b fig3 fig4 fig5 fig6 fig7 fig8 fig9 theory rings ablation_thresholds ablation_pb ablation_patience; do
  ./target/release/$f > /root/repo/results/$f.txt 2>&1
  echo "done $f $(date +%H:%M:%S)" >> /root/repo/results/progress.log
done
