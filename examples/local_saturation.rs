//! The motivation study of §III: under ADV+h traffic with Valiant
//! routing, the misrouted traffic entering each intermediate group
//! concentrates on single *local* links, capping throughput at `1/h`
//! even though the global links — the usual suspects — stay half idle.
//!
//! This example measures per-link utilization directly (the engine's
//! link counters) and prints the utilization histogram of local vs
//! global links, plus the observed throughput against the analytic
//! bounds.
//!
//! Run with:
//! ```text
//! cargo run --release --example local_saturation
//! ```

use ofar::prelude::*;
use ofar_core::engine::PortKind;

fn main() {
    let h = 3; // 19 groups, 114 routers, 342 nodes — quick but non-toy
    let cfg = SimConfig::paper(h);
    let topo = Dragonfly::new(cfg.params);

    // Offered load above the 1/h wall so the bottleneck binds.
    let load = 0.45;
    let warmup = 3_000u64;
    let measure = 6_000u64;

    certify(&cfg, MechanismKind::Valiant).expect("configuration must be deadlock-free");
    let mut net = Network::new(
        cfg,
        Mechanism::Valiant(ofar_core::routing::ValiantPolicy::new(&cfg, 7)),
    );
    let mut gen = TrafficGen::new(&topo, TrafficSpec::adversarial(h), 1);
    let mut bern = Bernoulli::new(load, cfg.packet_size, 2);
    let nodes = net.num_nodes();

    for _ in 0..warmup {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }
    net.enable_link_utilization();
    let start = net.stats().clone();
    for _ in 0..measure {
        bern.cycle(nodes, |src| {
            let dst = gen.destination(src);
            net.generate(src, dst);
        });
        net.step();
    }
    let w = StatsWindow::between(&start, net.stats(), measure, nodes);

    // Histogram of link utilization by class.
    let fab = net.fabric();
    let mut local = Vec::new();
    let mut global = Vec::new();
    for r in 0..topo.num_routers() {
        let rid = RouterId::from(r);
        for port in 0..fab.n_out() {
            let util = net.link_utilization(rid, port) as f64 / measure as f64;
            match fab.out_kind(port) {
                PortKind::Local => local.push(util),
                PortKind::Global => global.push(util),
                _ => {}
            }
        }
    }
    let summary = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let n = v.len();
        (
            v.iter().sum::<f64>() / n as f64,
            v[n / 2],
            v[(n as f64 * 0.99) as usize],
            v[n - 1],
        )
    };
    let (lmean, lmed, l99, lmax) = summary(&mut local);
    let (gmean, gmed, g99, gmax) = summary(&mut global);

    println!("ADV+{h} under Valiant routing, offered {load} phits/node/cycle");
    println!(
        "accepted throughput: {:.4}  (1/h wall: {:.4}, Valiant global bound: 0.5)",
        w.throughput(),
        ofar::theory::valiant_advh_bound(&cfg.params)
    );
    println!("\nlink utilization (phits/cycle per link):");
    println!("  class    mean    median    p99     max");
    println!("  local   {lmean:.3}   {lmed:.3}     {l99:.3}   {lmax:.3}");
    println!("  global  {gmean:.3}   {gmed:.3}     {g99:.3}   {gmax:.3}");
    println!(
        "\nThe hottest local links run at ~{:.0}% while global links sit near \
         {:.0}% — the §III phenomenon: the network is local-link-bound, so \
         randomizing over global links (Valiant) cannot help, but OFAR's \
         local misrouting can.",
        lmax * 100.0,
        gmean * 100.0
    );

    assert!(
        lmax > 0.85 && lmax > 1.5 * gmean && gmax < 0.75,
        "expected saturated local links against underused globals \
         (local max {lmax:.3}, global mean {gmean:.3}, global max {gmax:.3})"
    );
}
