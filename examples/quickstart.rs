//! Quickstart: build a small Dragonfly, route a few thousand packets with
//! OFAR and with minimal routing, and compare.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use ofar::prelude::*;

fn main() {
    // A small balanced Dragonfly: h = 2 → 9 groups, 36 routers, 72 nodes
    // (the topology of the paper's Fig. 1), with the paper's §V router
    // model: 8-phit packets, 3/2 VCs, 32/256-phit FIFOs, 10/100-cycle
    // link latencies.
    let cfg = SimConfig::paper(2);
    println!(
        "Dragonfly h=2: {} groups, {} routers, {} nodes, {} ports/router",
        cfg.params.groups(),
        cfg.params.routers(),
        cfg.params.nodes(),
        cfg.params.ports_per_router(),
    );

    // Steady-state measurement: offered load 0.2 phits/(node·cycle) of
    // adversarial traffic (every group sends to the group two positions
    // over — the ADV+2 pattern of §V).
    let opts = SteadyOpts {
        warmup: 3_000,
        measure: 5_000,
    };
    let spec = TrafficSpec::adversarial(2);

    println!(
        "\n{:8} {:>12} {:>12} {:>16}",
        "mech", "latency", "accepted", "misroutes/pkt"
    );
    for kind in [
        MechanismKind::Min,
        MechanismKind::Valiant,
        MechanismKind::Pb,
        MechanismKind::Ofar,
        MechanismKind::OfarL,
    ] {
        let p = steady_state(cfg, kind, &spec, 0.2, opts, 42);
        println!(
            "{:8} {:>12.1} {:>12.4} {:>16.3}",
            kind.name(),
            p.avg_latency,
            p.throughput,
            p.misroute_rate
        );
    }

    println!(
        "\nMIN collapses (1/2h²≈{:.3} bound, §III); the adaptive mechanisms \
         accept the full 0.2 load — OFAR at the lowest latency.",
        ofar::theory::min_adversarial_bound(&cfg.params)
    );
}
