//! The §VII reliability extension: OFAR's deadlock freedom hangs on the
//! escape ring, so a single failed ring link is a liveness hazard. The
//! paper sketches embedding up to `h` *edge-disjoint* Hamiltonian rings
//! so the system survives as long as one ring is intact.
//!
//! This example embeds the full disjoint family, injects random link
//! failures, and measures how many failures the escape subnetwork
//! tolerates — plus a demonstration that the simulator runs unchanged on
//! a secondary ring.
//!
//! Run with:
//! ```text
//! cargo run --release --example escape_ring_reliability
//! ```

use ofar::prelude::*;
use ofar_core::engine::Fabric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let h = 4;
    let topo = Dragonfly::balanced(h);
    let rings = HamiltonianRing::embed_disjoint(&topo, h);
    assert!(HamiltonianRing::pairwise_edge_disjoint(&topo, &rings));
    println!(
        "h={h}: embedded {} edge-disjoint Hamiltonian rings over {} routers",
        rings.len(),
        topo.num_routers()
    );

    // Monte Carlo: how many random local/global link failures until all
    // rings are dead?
    let mut rng = StdRng::seed_from_u64(7);
    let trials = 200;
    let mut sum_until_dead = 0usize;
    let mut survive_at_h_failures = 0usize;
    for _ in 0..trials {
        let mut failed: Vec<(RouterId, RouterId)> = Vec::new();
        loop {
            // Fail a random link (local or global, uniform over routers).
            let r = RouterId::from(rng.gen_range(0..topo.num_routers()));
            let a = topo.routers_per_group();
            let deg = (a - 1) + h;
            let port = rng.gen_range(0..deg);
            let other = if port < a - 1 {
                topo.local_neighbor(r, port)
            } else {
                topo.global_neighbor(r, port - (a - 1)).0
            };
            failed.push((r, other));
            let alive = HamiltonianRing::surviving_rings(&topo, &rings, &failed);
            if failed.len() == rings.len() && alive > 0 {
                survive_at_h_failures += 1;
            }
            if alive == 0 {
                sum_until_dead += failed.len();
                break;
            }
        }
    }
    println!(
        "random link failures until every ring is broken: {:.1} on average \
         ({} trials); {:.0}% of trials still had a live escape ring after \
         {} failures",
        sum_until_dead as f64 / trials as f64,
        trials,
        100.0 * survive_at_h_failures as f64 / trials as f64,
        rings.len(),
    );

    // A single ring dies to one well-aimed failure:
    let e = rings[0].edges()[0];
    let aimed = [(e.from(), e.to(&topo))];
    assert_eq!(
        HamiltonianRing::surviving_rings(&topo, &rings[..1], &aimed),
        0
    );
    println!(
        "a single-ring deployment is killed by 1 aimed failure — the multi-ring family is not."
    );

    // And the simulator runs on any ring of the family: route a burst of
    // traffic with OFAR using ring #1 instead of ring #0.
    let h2 = 2;
    let cfg = SimConfig::paper(h2).with_ring(RingMode::Embedded);
    let topo2 = Dragonfly::new(cfg.params);
    let alt_ring = HamiltonianRing::embedded(&topo2, 1);
    // Certify the *actual* backup ring before trusting it with escape
    // duty (the default `certify` would only prove ring #0).
    ofar_core::verify::verify_decl(
        &topo2,
        &cfg,
        &MechanismKind::Ofar.dependency_decl(&cfg),
        &[ofar_core::verify::RingSpec::from_ring(&topo2, &alt_ring)],
    )
    .expect("backup ring must be a spanning bubble-protected cycle");
    let fab = Fabric::with_ring(cfg, Some(alt_ring));
    let mut net = Network::with_fabric(fab, ofar_core::routing::OfarPolicy::new(&cfg, 3));
    let mut gen = TrafficGen::new(&topo2, TrafficSpec::adversarial(2), 5);
    for n in 0..net.num_nodes() {
        for _ in 0..5 {
            let src = NodeId::from(n);
            let dst = gen.destination(src);
            net.generate(src, dst);
        }
    }
    while !net.drained() {
        net.step();
        assert!(net.now() < 200_000, "network failed to drain on ring #1");
    }
    println!(
        "OFAR drained a 5-packet/node ADV+2 burst on backup ring #1 in {} cycles — \
         failover is a fabric swap, no routing changes.",
        net.now()
    );
}
