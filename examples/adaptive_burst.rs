//! Barrier-synchronized communication bursts (§VI-C): in bulk-synchronous
//! HPC applications every rank injects a batch of messages right after a
//! barrier. This example reproduces a small version of the paper's burst
//! experiment — each node enqueues a fixed number of packets with a mixed
//! destination distribution and we time how long each mechanism needs to
//! drain the network.
//!
//! Run with:
//! ```text
//! cargo run --release --example adaptive_burst
//! ```

use ofar::prelude::*;

fn main() {
    let h = 2;
    let cfg = SimConfig::paper(h);
    let packets_per_node = 40;

    // The paper's MIX2: 60% uniform, 20% ADV+1, 20% ADV+h — a blend of
    // well-behaved and adversarial phases, as after a halo exchange.
    let spec = TrafficSpec::mix2(h);
    println!(
        "burst: {} packets/node ({} total) on h={h}, pattern {}",
        packets_per_node,
        packets_per_node * cfg.params.nodes(),
        spec.label()
    );

    let mechs = [
        MechanismKind::Valiant,
        MechanismKind::Pb,
        MechanismKind::Ofar,
        MechanismKind::OfarL,
    ];
    let results = burst_comparison(cfg, &mechs, &spec, packets_per_node, 11);

    let pb = results
        .iter()
        .find(|(k, _)| *k == MechanismKind::Pb)
        .and_then(|(_, r)| r.cycles)
        .expect("PB must drain");

    println!(
        "\n{:8} {:>10} {:>10} {:>12}",
        "mech", "cycles", "vs PB", "avg latency"
    );
    for (kind, r) in &results {
        let cycles = r.cycles.expect("burst must drain");
        println!(
            "{:8} {:>10} {:>10.3} {:>12.1}",
            kind.name(),
            cycles,
            cycles as f64 / pb as f64,
            r.avg_latency
        );
    }
    println!("\nLower is better; the paper reports OFAR consuming bursts 43% faster than PB on average (Fig. 7).");
}
