//! The paper's motivating application scenario (§I, §III): a
//! bulk-synchronous halo exchange on a 2-D domain decomposition.
//!
//! With the default **sequential** rank-to-node mapping, grid neighbors
//! sit in the same or adjacent groups and the exchange concentrates on a
//! few local/global links — the Bhatele et al. hot-spot problem. Their
//! mitigation is **randomizing the task mapping**, which balances links
//! by destroying locality. The paper's position is that the *network*
//! should solve it instead: OFAR's in-transit misrouting recovers the
//! performance of the randomized mapping while keeping the locality.
//!
//! This example measures the time to complete a fixed number of
//! halo-exchange rounds under both mappings for MIN, VAL, PB and OFAR.
//!
//! Run with:
//! ```text
//! cargo run --release --example halo_exchange
//! ```

use ofar::prelude::*;
use ofar_core::traffic::{StencilTraffic, TaskMapping};

/// Drain `rounds` back-to-back exchange rounds and return the cycles.
fn run(kind: MechanismKind, mapping: TaskMapping, rounds: usize) -> u64 {
    let cfg = kind.adapt_config(SimConfig::paper(2));
    certify(&cfg, kind).expect("configuration must be deadlock-free");
    let mut net = Network::new(cfg, kind.build(&cfg, 17));
    let topo = Dragonfly::new(cfg.params);
    let stencil = StencilTraffic::square_2d(&topo, mapping, 23);
    for _ in 0..rounds {
        stencil.exchange_round(|src, dst| net.generate(src, dst));
    }
    while !net.drained() {
        net.step();
        assert!(net.now() < 1_000_000, "exchange failed to drain");
    }
    net.now()
}

fn main() {
    let rounds = 30;
    let topo = Dragonfly::balanced(2);
    let s = StencilTraffic::square_2d(&topo, TaskMapping::Sequential, 23);
    println!(
        "halo exchange on a {:?} periodic grid over {} nodes, {} rounds \
         ({} messages/round)\n",
        s.dims(),
        topo.num_nodes(),
        rounds,
        s.messages_per_round()
    );

    println!(
        "{:8} {:>16} {:>16} {:>10}",
        "mech", "sequential", "randomized", "seq/rand"
    );
    let mut results = Vec::new();
    for kind in [
        MechanismKind::Min,
        MechanismKind::Valiant,
        MechanismKind::Pb,
        MechanismKind::Ofar,
    ] {
        let seq = run(kind, TaskMapping::Sequential, rounds);
        let rnd = run(kind, TaskMapping::RandomizedNodes, rounds);
        println!(
            "{:8} {:>14}cy {:>14}cy {:>10.2}",
            kind.name(),
            seq,
            rnd,
            seq as f64 / rnd as f64
        );
        results.push((kind, seq, rnd));
    }

    let min_seq = results[0].1;
    let (_, ofar_seq, ofar_rnd) = results[3];
    println!(
        "\nWith sequential mapping, OFAR finishes {:.2}x faster than MIN — the \
         network absorbs the hot links the mapping creates. And OFAR's \
         sequential run beats its own randomized one ({} vs {} cycles): with \
         an adaptive network there is no reason to give up locality by \
         randomizing the task mapping — the paper's §III argument for a \
         network-level solution.",
        min_seq as f64 / ofar_seq as f64,
        ofar_seq,
        ofar_rnd,
    );
    assert!(
        ofar_seq < min_seq,
        "OFAR must beat MIN on the hot-spot mapping"
    );
}
