//! Offline stand-in for `criterion`.
//!
//! Enough of the API to compile and run this workspace's benches: each
//! `bench_function` runs its routine a handful of times and prints the
//! mean wall-clock time. No statistics, no HTML reports, no comparisons —
//! the figure binaries under `src/bin` are the real data generators; the
//! benches only need to execute.

use std::time::{Duration, Instant};

/// Iterations per benchmark; a stand-in for criterion's sampling.
const RUNS: u32 = 3;

/// Prevent the optimiser from deleting a value (forwards to `std::hint`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How batched inputs are sized (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Throughput annotation (accepted, ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        eprintln!("benchmark group: {name}");
        BenchmarkGroup { _parent: self }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.to_string(), f);
        self
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted, ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Annotate throughput (accepted, ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function(
        &mut self,
        id: impl std::fmt::Display,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_bench(&id.to_string(), f);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

fn run_bench(id: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.elapsed / b.iters;
        eprintln!("  {id}: {mean:?}/iter over {} iters", b.iters);
    } else {
        eprintln!("  {id}: no iterations recorded");
    }
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Time `routine` over a few runs.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        for _ in 0..RUNS {
            let start = Instant::now();
            black_box(routine());
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }

    /// Time `routine` over freshly set-up inputs.
    pub fn iter_batched<I, R>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> R,
        _size: BatchSize,
    ) {
        for _ in 0..RUNS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declare a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine() {
        let mut c = Criterion::default();
        let mut count = 0u32;
        c.bench_function("probe", |b| b.iter(|| count += 1));
        assert_eq!(count, RUNS);
    }

    #[test]
    fn groups_accept_annotations() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10).throughput(Throughput::Elements(5));
        let mut ran = false;
        g.bench_function("inner", |b| {
            b.iter_batched(|| 21u64, |x| x * 2, BatchSize::LargeInput)
        });
        g.bench_function("flag", |b| b.iter(|| ran = true));
        g.finish();
        assert!(ran);
    }
}
