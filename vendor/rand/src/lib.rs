//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small API subset it actually uses: `SeedableRng`,
//! `Rng::{gen_range, gen_bool}` over integer and float ranges,
//! `rngs::{SmallRng, StdRng}` and `seq::SliceRandom::shuffle`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — the same
//! construction the real `SmallRng` uses on 64-bit targets. Streams are
//! deterministic per seed but are NOT guaranteed to match the upstream
//! crate bit-for-bit; everything in this workspace only relies on
//! self-consistent determinism.

pub mod rngs;
pub mod seq;

/// Core entropy source: everything above is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every source.
pub trait Rng: RngCore {
    /// Uniform sample from a range (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Bernoulli trial with success probability `p` (clamped to [0, 1]).
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// 53-bit mantissa uniform in [0, 1).
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draw one value; panics on an empty range, like the real crate.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as u128).wrapping_add(v) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                let v = (rng.next_u64() as u128) % span;
                (lo as u128).wrapping_add(v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    #[inline]
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

/// SplitMix64 step, used for seeding and as a one-shot mixer.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0.0f64..2.5);
            assert!((0.0..2.5).contains(&w));
            let x = rng.gen_range(-5i32..=5);
            assert!((-5..=5).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
