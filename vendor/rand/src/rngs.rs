//! Concrete generators: `SmallRng` and `StdRng` are both xoshiro256**
//! here (the workspace only needs speed and determinism, not a CSPRNG).

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256** — small, fast, and plenty for simulation workloads.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is the one invalid seed for xoshiro.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_u64(seed)
    }
}

/// The non-cryptographic small generator (same role as rand's `SmallRng`).
pub type SmallRng = Xoshiro256;

/// The "standard" generator; aliased to the same engine in this stub.
pub type StdRng = Xoshiro256;
