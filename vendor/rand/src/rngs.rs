//! Concrete generators: `SmallRng` and `StdRng` are both xoshiro256**
//! here (the workspace only needs speed and determinism, not a CSPRNG).

use crate::{splitmix64, RngCore, SeedableRng};

/// xoshiro256** — small, fast, and plenty for simulation workloads.
#[derive(Clone, Debug)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// The raw 256-bit generator state, for checkpointing. Feeding the
    /// result back through [`Xoshiro256::from_state`] reproduces the
    /// stream exactly where it left off.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a previously captured [`state`].
    ///
    /// An all-zero state (impossible to capture from a live generator,
    /// but possible in a corrupted checkpoint) is replaced by the same
    /// non-zero fallback used when seeding, so the generator never
    /// degenerates into a constant stream.
    ///
    /// [`state`]: Xoshiro256::state
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    fn from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // An all-zero state is the one invalid seed for xoshiro.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for Xoshiro256 {
    fn seed_from_u64(seed: u64) -> Self {
        Self::from_u64(seed)
    }
}

/// The non-cryptographic small generator (same role as rand's `SmallRng`).
pub type SmallRng = Xoshiro256;

/// The "standard" generator; aliased to the same engine in this stub.
pub type StdRng = Xoshiro256;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = Xoshiro256::seed_from_u64(0xDEAD_BEEF);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = Xoshiro256::from_state(a.state());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_state_is_rejected() {
        let mut z = Xoshiro256::from_state([0; 4]);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
