//! Offline stand-in for `proptest`.
//!
//! Provides the subset this workspace uses: the `proptest!` macro with a
//! `#![proptest_config(...)]` header, integer-range / tuple / `any::<T>()`
//! / `prop::collection::vec` strategies, and the `prop_assert*` macros.
//!
//! Differences from the real crate: case generation is deterministic
//! (seeded from the test name, so failures reproduce without regression
//! files) and there is no shrinking — the failing case is reported as-is.

use std::ops::{Range, RangeInclusive};

pub mod collection;

pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy,
    };
}

/// Per-block configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// Deterministic case generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a test name so every property has a stable stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name, folded into a fixed base seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ 0x5DEECE66D,
        } // constant keeps all-zero names off zero
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `0..span` (`span > 0`).
    pub fn below(&mut self, span: u128) -> u128 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128) << 64 | self.next_u64() as u128) % span
    }
}

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

// `h_values()`-style helpers return `impl Strategy`; sampling through a
// reference keeps both `&range` and owned strategies usable in the macro.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                (self.start as u128).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                (lo as u128).wrapping_add(rng.below(span)) as $t
            }
        }
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! tuple_strategies {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategies! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a default full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Full-domain strategy for `T`.
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy constructor.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// A constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Property body: `proptest!` wraps each case in a closure returning this.
pub type TestCaseResult = Result<(), String>;

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_properties! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_properties! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_properties {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat_param in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut __proptest_rng = $crate::TestRng::deterministic(stringify!($name));
            for __proptest_case in 0..config.cases {
                $(let $pat = $crate::Strategy::sample(&($strat), &mut __proptest_rng);)*
                let __proptest_outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = __proptest_outcome {
                    panic!(
                        "proptest property {} failed at case {}: {}",
                        stringify!($name),
                        __proptest_case,
                        message
                    );
                }
            }
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {}", stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} != {} (both {:?})",
                stringify!($left), stringify!($right), l
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            // Without a rejection budget, a failed assumption just skips
            // the case.
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = u32> {
        1u32..500
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 3usize..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4, "y was {y}");
        }

        #[test]
        fn tuples_and_vecs(pair in (0usize..5, 1u64..9), v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(pair.0 < 5);
            prop_assert!(pair.1 >= 1 && pair.1 < 9);
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn helper_strategies_work(e in evens(), s in any::<u64>()) {
            prop_assert_ne!(e, 0);
            let _ = s;
            prop_assert_eq!(e, e);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("stream");
        let mut b = crate::TestRng::deterministic("stream");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_number() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100);
            }
        }
        always_fails();
    }
}
