//! Offline stand-in for `rayon`.
//!
//! Implements the slice `par_iter()` → (`enumerate`) → `map` → `collect`
//! pipeline this workspace uses, executing on `std::thread::scope` with a
//! shared atomic work counter. Results are returned in input order, so
//! behaviour is indistinguishable from the real crate for pure maps.

use std::sync::atomic::{AtomicUsize, Ordering};

pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// `.par_iter()` on `&[T]` / `&Vec<T>`.
pub trait IntoParallelRefIterator<'data> {
    /// Element type yielded by the iterator.
    type Item: 'data;

    /// A parallel iterator over the collection.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;

    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { slice: self }
    }
}

/// Parallel iterator over a slice.
pub struct ParIter<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Pair each element with its index.
    pub fn enumerate(self) -> ParEnumerate<'data, T> {
        ParEnumerate { slice: self.slice }
    }

    /// Map each element through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParMap<'data, T, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        ParMap {
            slice: self.slice,
            f,
        }
    }
}

/// Enumerated parallel iterator.
pub struct ParEnumerate<'data, T> {
    slice: &'data [T],
}

impl<'data, T: Sync> ParEnumerate<'data, T> {
    /// Map each `(index, &element)` pair through `f` in parallel.
    pub fn map<R, F>(self, f: F) -> ParEnumMap<'data, T, F>
    where
        F: Fn((usize, &'data T)) -> R + Sync,
        R: Send,
    {
        ParEnumMap {
            slice: self.slice,
            f,
        }
    }
}

/// Mapped parallel iterator.
pub struct ParMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn(&'data T) -> R + Sync,
{
    /// Run the map on a thread pool and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        par_map_indexed(self.slice.len(), move |i| f(&self.slice[i]))
            .into_iter()
            .collect()
    }
}

/// Mapped, enumerated parallel iterator.
pub struct ParEnumMap<'data, T, F> {
    slice: &'data [T],
    f: F,
}

impl<'data, T, R, F> ParEnumMap<'data, T, F>
where
    T: Sync,
    R: Send,
    F: Fn((usize, &'data T)) -> R + Sync,
{
    /// Run the map on a thread pool and collect results in input order.
    pub fn collect<C: FromIterator<R>>(self) -> C {
        let f = &self.f;
        par_map_indexed(self.slice.len(), move |i| f((i, &self.slice[i])))
            .into_iter()
            .collect()
    }
}

/// Evaluate `job(0..n)` across scoped worker threads, preserving order.
fn par_map_indexed<R, F>(n: usize, job: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1)
        .min(n.max(1));
    if workers <= 1 || n <= 1 {
        return (0..n).map(job).collect();
    }
    let next = AtomicUsize::new(0);
    let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let next = &next;
                let job = &job;
                scope.spawn(move || {
                    let mut produced = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            return produced;
                        }
                        produced.push((i, job(i)));
                    }
                })
            })
            .collect();
        for handle in handles {
            for (i, r) in handle.join().expect("rayon-stub worker panicked") {
                out[i] = Some(r);
            }
        }
    });
    out.into_iter()
        .map(|o| o.expect("uncomputed slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn map_preserves_order() {
        let xs: Vec<u64> = (0..257).collect();
        let doubled: Vec<u64> = xs.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..257).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn enumerate_map_matches_sequential() {
        let xs = vec!["a", "bb", "ccc"];
        let got: Vec<usize> = xs
            .par_iter()
            .enumerate()
            .map(|(i, s)| i + s.len())
            .collect();
        assert_eq!(got, vec![1, 3, 5]);
    }

    #[test]
    fn empty_input_is_fine() {
        let xs: Vec<u8> = Vec::new();
        let got: Vec<u8> = xs.par_iter().map(|&x| x).collect();
        assert!(got.is_empty());
    }
}
